#pragma once
/**
 * @file
 * The bounded log buffer decoupling the application core from the
 * lifeguard core.
 *
 * Per the paper, the two cores are not synchronized: they coordinate only
 * through this buffer, so log consumption typically lags event retirement
 * (enabling pipeline-style processing on the lifeguard core), and the
 * buffer provides the back-pressure that stalls the application when the
 * lifeguard falls too far behind. Each entry carries the cycle at which
 * the producing core appended it so the coupled timing model can honour
 * "a record cannot be consumed before it was produced".
 *
 * Storage is a contiguous ring so a consumer can drain in *batches*:
 * frontSpan() exposes the oldest queued entries as a contiguous span
 * (clipped at the ring wrap) and popN() retires them in one step — the
 * fast path the batched dispatch engine and the host-side throughput
 * bench (bench/micro_dispatch.cc) drain through. The one-at-a-time
 * push/pop API is unchanged and interoperates with the batch API.
 *
 * The produce/start/finish recurrence that consumes this buffer is
 * documented in core/lba_system.h and docs/ARCHITECTURE.md.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "log/event.h"

namespace lba::log {

/** Occupancy and stall accounting for the buffer. */
struct LogBufferStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_occupancy = 0;
    /** Times a producer found the buffer full. */
    std::uint64_t full_events = 0;
    /** Times a consumer found the buffer empty. */
    std::uint64_t empty_events = 0;
};

/**
 * FIFO of (record, produce-cycle) pairs with a fixed capacity.
 */
class LogBuffer
{
  public:
    /** One queued record plus the cycle its production completed. */
    struct Entry
    {
        EventRecord record;
        Cycles produced_at = 0;
    };

    /** @param capacity Maximum number of in-flight records. */
    explicit LogBuffer(std::size_t capacity);

    /** True when no further records fit. */
    bool full() const { return size_ >= capacity_; }

    /** True when no records are queued. */
    bool empty() const { return size_ == 0; }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append a record produced at @p produced_at.
     * @return False (and counts a full event) when the buffer is full.
     */
    bool push(const EventRecord& record, Cycles produced_at);

    /**
     * Remove the oldest record.
     * @return False (and counts an empty event) when the buffer is empty.
     */
    bool pop(Entry* out);

    /** Peek at the oldest record without removing it. */
    const Entry* front() const;

    /**
     * Contiguous view of up to @p max of the oldest queued entries,
     * without removing them. The span may be shorter than both @p max
     * and size() when the ring wraps; call again after popN() to see
     * the remainder. Invalidated by any push/pop.
     */
    std::span<const Entry> frontSpan(std::size_t max) const;

    /**
     * Remove the @p n oldest records in one step (counted as @p n
     * pops). @p n must not exceed size().
     */
    void popN(std::size_t n);

    const LogBufferStats& stats() const { return stats_; }

  private:
    std::size_t capacity_;
    /** Ring storage: entries live at (head_ + i) % capacity_. */
    std::vector<Entry> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    LogBufferStats stats_;
};

} // namespace lba::log
