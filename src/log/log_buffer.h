#pragma once
/**
 * @file
 * The bounded log buffer decoupling the application core from the
 * lifeguard core.
 *
 * Per the paper, the two cores are not synchronized: they coordinate only
 * through this buffer, so log consumption typically lags event retirement
 * (enabling pipeline-style processing on the lifeguard core), and the
 * buffer provides the back-pressure that stalls the application when the
 * lifeguard falls too far behind. Each entry carries the cycle at which
 * the producing core appended it so the coupled timing model can honour
 * "a record cannot be consumed before it was produced".
 *
 * The produce/start/finish recurrence that consumes this buffer is
 * documented in core/lba_system.h and docs/ARCHITECTURE.md.
 */

#include <cstdint>
#include <deque>

#include "common/types.h"
#include "log/event.h"

namespace lba::log {

/** Occupancy and stall accounting for the buffer. */
struct LogBufferStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_occupancy = 0;
    /** Times a producer found the buffer full. */
    std::uint64_t full_events = 0;
    /** Times a consumer found the buffer empty. */
    std::uint64_t empty_events = 0;
};

/**
 * FIFO of (record, produce-cycle) pairs with a fixed capacity.
 */
class LogBuffer
{
  public:
    /** One queued record plus the cycle its production completed. */
    struct Entry
    {
        EventRecord record;
        Cycles produced_at = 0;
    };

    /** @param capacity Maximum number of in-flight records. */
    explicit LogBuffer(std::size_t capacity);

    /** True when no further records fit. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True when no records are queued. */
    bool empty() const { return entries_.empty(); }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append a record produced at @p produced_at.
     * @return False (and counts a full event) when the buffer is full.
     */
    bool push(const EventRecord& record, Cycles produced_at);

    /**
     * Remove the oldest record.
     * @return False (and counts an empty event) when the buffer is empty.
     */
    bool pop(Entry* out);

    /** Peek at the oldest record without removing it. */
    const Entry* front() const;

    const LogBufferStats& stats() const { return stats_; }

  private:
    std::size_t capacity_;
    std::deque<Entry> entries_;
    LogBufferStats stats_;
};

} // namespace lba::log
