#pragma once
/**
 * @file
 * The bounded log buffer decoupling the application core from the
 * lifeguard core.
 *
 * Per the paper, the two cores are not synchronized: they coordinate only
 * through this buffer, so log consumption typically lags event retirement
 * (enabling pipeline-style processing on the lifeguard core), and the
 * buffer provides the back-pressure that stalls the application when the
 * lifeguard falls too far behind. Each entry carries the cycle at which
 * the producing core appended it so the coupled timing model can honour
 * "a record cannot be consumed before it was produced".
 *
 * Storage is a contiguous ring so a consumer can drain in *batches*:
 * frontSpan() exposes the oldest queued entries as a contiguous span
 * (clipped at the ring wrap) and popN() retires them in one step — the
 * fast path the batched dispatch engine and the host-side throughput
 * bench (bench/micro_dispatch.cc) drain through. The one-at-a-time
 * push/pop API is unchanged and interoperates with the batch API.
 *
 * Concurrency: the ring is a lock-free single-producer/single-consumer
 * queue, the host-side analogue of the paper's asynchronous log
 * transport. One thread owns the producer end (push), one thread owns
 * the consumer end (pop/front/frontSpan/popN); the two may run
 * concurrently. Synchronization is two monotonic position counters:
 *
 *  - The producer writes the slot, then advances `tail_` with a release
 *    store; the consumer's acquire load of `tail_` therefore observes a
 *    fully-written entry before it observes the entry's availability.
 *  - The consumer reads the slot, then advances `head_` with a release
 *    store; the producer's acquire load of `head_` therefore observes
 *    the read as complete before it reuses the slot.
 *
 * Each side reads its own counter relaxed (it is the only writer).
 * Single-threaded use degenerates to plain loads/stores on one thread
 * and stays exact. docs/ARCHITECTURE.md ("Threaded execution") gives
 * the full memory-order argument; tests/log_test.cpp stress-tests the
 * cross-thread ring under ThreadSanitizer.
 *
 * Side ownership is machine-checked (docs/STATIC_ANALYSIS.md): the
 * ring carries two role capabilities, `producer_side_` and
 * `consumer_side_`, every entry point is annotated with the side it
 * belongs to (LBA_SPSC_PRODUCER / LBA_SPSC_CONSUMER), and the
 * producer-/consumer-owned fields are LBA_GUARDED_BY the matching
 * side. The owning thread adopts its side once through
 * assumeProducer()/assumeConsumer() — under clang -Wthread-safety, a
 * consumer that writes a producer-owned field no longer compiles
 * (tests/static_analysis/ proves it).
 *
 * The produce/start/finish recurrence that consumes this buffer is
 * documented in core/lba_system.h and docs/ARCHITECTURE.md.
 */

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "log/event.h"

namespace lba::log {

/**
 * Occupancy and stall accounting for the buffer, merged across the two
 * sides. Internally the ring keeps the producer-side fields (pushes,
 * full_events, max_occupancy) and the consumer-side fields (pops,
 * empty_events) in separate side-guarded structs, so concurrent
 * operation never races on a field; stats() assembles this snapshot.
 * Read it only while the ring is quiescent (no concurrent
 * producer/consumer), e.g. after a run.
 */
struct LogBufferStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_occupancy = 0;
    /** Times a producer found the buffer full. */
    std::uint64_t full_events = 0;
    /** Times a consumer found the buffer empty. */
    std::uint64_t empty_events = 0;
};

/**
 * FIFO of (record, produce-cycle) pairs with a fixed capacity.
 */
class LogBuffer
{
  public:
    /** One queued record plus the cycle its production completed. */
    struct Entry
    {
        EventRecord record;
        Cycles produced_at = 0;
    };

    /** @param capacity Maximum number of in-flight records. */
    explicit LogBuffer(std::size_t capacity);

    /**
     * Moving is a setup-time convenience (building lane arrays); it is
     * NOT thread-safe and must happen before any concurrent use (which
     * is why the analysis is waived here).
     */
    LogBuffer(LogBuffer&& other) noexcept LBA_NO_THREAD_SAFETY_ANALYSIS;
    LogBuffer& operator=(LogBuffer&&) = delete;

    /**
     * Statically adopt the producer side of this ring. Call once from
     * the thread that owns push() — the static analogue of "I am the
     * single producer", checked per call site rather than at runtime
     * (an SPSC ring has no cheap runtime owner check).
     */
    void assumeProducer() const LBA_ASSERT_CAPABILITY(producer_side_) {}

    /** Statically adopt the consumer side (pop/front/frontSpan/popN). */
    void assumeConsumer() const LBA_ASSERT_CAPABILITY(consumer_side_) {}

    /** True when no further records fit (producer-accurate; a
     *  concurrent consumer can only make this stale towards "room"). */
    bool
    full() const LBA_SPSC_PRODUCER(producer_side_)
    {
        return tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire) >=
               capacity_;
    }

    /** True when no records are queued (consumer-accurate; a
     *  concurrent producer can only make this stale towards "data"). */
    bool
    empty() const LBA_SPSC_CONSUMER(consumer_side_)
    {
        return tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_relaxed);
    }

    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Append a record produced at @p produced_at. Producer side.
     * @return False (and counts a full event) when the buffer is full.
     */
    bool push(const EventRecord& record, Cycles produced_at)
        LBA_SPSC_PRODUCER(producer_side_);

    /**
     * Remove the oldest record. Consumer side.
     * @return False (and counts an empty event) when the buffer is empty.
     */
    bool pop(Entry* out) LBA_SPSC_CONSUMER(consumer_side_);

    /** Peek at the oldest record without removing it. Consumer side. */
    const Entry* front() const LBA_SPSC_CONSUMER(consumer_side_);

    /**
     * Contiguous view of up to @p max of the oldest queued entries,
     * without removing them. The span may be shorter than both @p max
     * and size() when the ring wraps; call again after popN() to see
     * the remainder. Invalidated by popping past it. Consumer side —
     * the entries stay valid under a concurrent producer because the
     * producer never reuses a slot before the consumer releases it
     * through popN()/pop().
     */
    std::span<const Entry> frontSpan(std::size_t max) const
        LBA_SPSC_CONSUMER(consumer_side_);

    /**
     * Remove the @p n oldest records in one step (counted as @p n
     * pops). @p n must not exceed size(). Consumer side.
     */
    void popN(std::size_t n) LBA_SPSC_CONSUMER(consumer_side_);

    /**
     * Merged snapshot of both sides' counters. Quiescent reads only
     * (see LogBufferStats) — which is why this is the one accessor the
     * analysis deliberately waives: it reads fields of both sides.
     */
    LogBufferStats
    stats() const LBA_NO_THREAD_SAFETY_ANALYSIS
    {
        LogBufferStats merged;
        merged.pushes = producer_stats_.pushes;
        merged.full_events = producer_stats_.full_events;
        merged.max_occupancy = producer_stats_.max_occupancy;
        merged.pops = consumer_stats_.pops;
        merged.empty_events = consumer_stats_.empty_events;
        return merged;
    }

  private:
    /** Counters only the pushing thread writes. */
    struct ProducerStats
    {
        std::uint64_t pushes = 0;
        std::uint64_t full_events = 0;
        std::uint64_t max_occupancy = 0;
    };

    /** Counters only the popping thread writes. */
    struct ConsumerStats
    {
        std::uint64_t pops = 0;
        std::uint64_t empty_events = 0;
    };

    /** The producer side of the ring, as a static capability: held by
     *  exactly the thread that owns push(). */
    threading::ThreadRole producer_side_;
    /** The consumer side (pop/front/frontSpan/popN). */
    threading::ThreadRole consumer_side_;

    std::size_t capacity_;
    /** Ring storage: the entry for position p lives at p % capacity_
     *  (maintained incrementally — see head_idx_/tail_idx_). */
    std::vector<Entry> ring_;
    /** Position of the next pop: monotonic, wraps modulo 2^64.
     *  Written by the consumer (release), read by the producer
     *  (acquire) to learn which slots are free again. */
    std::atomic<std::uint64_t> head_{0};
    /** Position of the next push: monotonic. Written by the producer
     *  (release), read by the consumer (acquire) to learn which
     *  entries are visible. */
    std::atomic<std::uint64_t> tail_{0};
    /** head_ % capacity_, maintained by the consumer with a
     *  compare-and-subtract (a branch beats an integer division in
     *  this hot loop). */
    std::size_t head_idx_ LBA_GUARDED_BY(consumer_side_) = 0;
    /** tail_ % capacity_, maintained by the producer likewise. */
    std::size_t tail_idx_ LBA_GUARDED_BY(producer_side_) = 0;
    ProducerStats producer_stats_ LBA_GUARDED_BY(producer_side_);
    ConsumerStats consumer_stats_ LBA_GUARDED_BY(consumer_side_);
};

} // namespace lba::log
