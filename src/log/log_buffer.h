#pragma once
/**
 * @file
 * The bounded log buffer decoupling the application core from the
 * lifeguard core.
 *
 * Per the paper, the two cores are not synchronized: they coordinate only
 * through this buffer, so log consumption typically lags event retirement
 * (enabling pipeline-style processing on the lifeguard core), and the
 * buffer provides the back-pressure that stalls the application when the
 * lifeguard falls too far behind. Each entry carries the cycle at which
 * the producing core appended it so the coupled timing model can honour
 * "a record cannot be consumed before it was produced".
 *
 * Storage is a contiguous ring so a consumer can drain in *batches*:
 * frontSpan() exposes the oldest queued entries as a contiguous span
 * (clipped at the ring wrap) and popN() retires them in one step — the
 * fast path the batched dispatch engine and the host-side throughput
 * bench (bench/micro_dispatch.cc) drain through. The one-at-a-time
 * push/pop API is unchanged and interoperates with the batch API.
 *
 * Concurrency: the ring is a lock-free single-producer/single-consumer
 * queue, the host-side analogue of the paper's asynchronous log
 * transport. One thread owns the producer end (push), one thread owns
 * the consumer end (pop/front/frontSpan/popN); the two may run
 * concurrently. Synchronization is two monotonic position counters:
 *
 *  - The producer writes the slot, then advances `tail_` with a release
 *    store; the consumer's acquire load of `tail_` therefore observes a
 *    fully-written entry before it observes the entry's availability.
 *  - The consumer reads the slot, then advances `head_` with a release
 *    store; the producer's acquire load of `head_` therefore observes
 *    the read as complete before it reuses the slot.
 *
 * Each side reads its own counter relaxed (it is the only writer).
 * Single-threaded use degenerates to plain loads/stores on one thread
 * and stays exact. docs/ARCHITECTURE.md ("Threaded execution") gives
 * the full memory-order argument; tests/log_test.cpp stress-tests the
 * cross-thread ring under ThreadSanitizer.
 *
 * The produce/start/finish recurrence that consumes this buffer is
 * documented in core/lba_system.h and docs/ARCHITECTURE.md.
 */

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "log/event.h"

namespace lba::log {

/**
 * Occupancy and stall accounting for the buffer. Producer-side fields
 * (pushes, full_events, max_occupancy) are written only by the pushing
 * thread; consumer-side fields (pops, empty_events) only by the popping
 * thread — so concurrent operation never races on a field. Read the
 * whole struct only while the ring is quiescent (no concurrent
 * producer/consumer), e.g. after a run.
 */
struct LogBufferStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_occupancy = 0;
    /** Times a producer found the buffer full. */
    std::uint64_t full_events = 0;
    /** Times a consumer found the buffer empty. */
    std::uint64_t empty_events = 0;
};

/**
 * FIFO of (record, produce-cycle) pairs with a fixed capacity.
 */
class LogBuffer
{
  public:
    /** One queued record plus the cycle its production completed. */
    struct Entry
    {
        EventRecord record;
        Cycles produced_at = 0;
    };

    /** @param capacity Maximum number of in-flight records. */
    explicit LogBuffer(std::size_t capacity);

    /**
     * Moving is a setup-time convenience (building lane arrays); it is
     * NOT thread-safe and must happen before any concurrent use.
     */
    LogBuffer(LogBuffer&& other) noexcept;
    LogBuffer& operator=(LogBuffer&&) = delete;

    /** True when no further records fit (producer-accurate; a
     *  concurrent consumer can only make this stale towards "room"). */
    bool
    full() const
    {
        return tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire) >=
               capacity_;
    }

    /** True when no records are queued (consumer-accurate; a
     *  concurrent producer can only make this stale towards "data"). */
    bool
    empty() const
    {
        return tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_relaxed);
    }

    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Append a record produced at @p produced_at. Producer side.
     * @return False (and counts a full event) when the buffer is full.
     */
    bool push(const EventRecord& record, Cycles produced_at);

    /**
     * Remove the oldest record. Consumer side.
     * @return False (and counts an empty event) when the buffer is empty.
     */
    bool pop(Entry* out);

    /** Peek at the oldest record without removing it. Consumer side. */
    const Entry* front() const;

    /**
     * Contiguous view of up to @p max of the oldest queued entries,
     * without removing them. The span may be shorter than both @p max
     * and size() when the ring wraps; call again after popN() to see
     * the remainder. Invalidated by popping past it. Consumer side —
     * the entries stay valid under a concurrent producer because the
     * producer never reuses a slot before the consumer releases it
     * through popN()/pop().
     */
    std::span<const Entry> frontSpan(std::size_t max) const;

    /**
     * Remove the @p n oldest records in one step (counted as @p n
     * pops). @p n must not exceed size(). Consumer side.
     */
    void popN(std::size_t n);

    /** See LogBufferStats for the cross-thread read rules. */
    const LogBufferStats& stats() const { return stats_; }

  private:
    std::size_t capacity_;
    /** Ring storage: the entry for position p lives at p % capacity_
     *  (maintained incrementally — see head_idx_/tail_idx_). */
    std::vector<Entry> ring_;
    /** Position of the next pop: monotonic, wraps modulo 2^64.
     *  Written by the consumer (release), read by the producer
     *  (acquire) to learn which slots are free again. */
    std::atomic<std::uint64_t> head_{0};
    /** Position of the next push: monotonic. Written by the producer
     *  (release), read by the consumer (acquire) to learn which
     *  entries are visible. */
    std::atomic<std::uint64_t> tail_{0};
    /** head_ % capacity_, maintained by the consumer with a
     *  compare-and-subtract (a branch beats an integer division in
     *  this hot loop). */
    std::size_t head_idx_ = 0;
    /** tail_ % capacity_, maintained by the producer likewise. */
    std::size_t tail_idx_ = 0;
    LogBufferStats stats_;
};

} // namespace lba::log
