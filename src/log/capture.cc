/**
 * @file
 * Capture unit record formation.
 */

#include "log/capture.h"

namespace lba::log {

EventRecord
CaptureUnit::makeRecord(const sim::Retired& retired)
{
    EventRecord record;
    record.pc = retired.pc;
    record.tid = retired.tid;
    record.type = eventTypeOf(isa::classOf(retired.instr.op));
    record.opcode = static_cast<std::uint8_t>(retired.instr.op);
    record.rd = retired.instr.rd;
    record.rs1 = retired.instr.rs1;
    record.rs2 = retired.instr.rs2;
    if (retired.mem_bytes > 0) {
        record.addr = retired.mem_addr;
        record.aux = retired.mem_bytes;
    } else if (retired.ctrl_taken) {
        record.addr = retired.ctrl_target;
        record.aux = 1; // taken
    }
    return record;
}

EventRecord
CaptureUnit::makeRecord(const sim::OsEvent& event)
{
    EventRecord record;
    record.tid = event.tid;
    record.type = eventTypeOf(event.type);
    record.addr = event.addr;
    record.aux = event.size;
    return record;
}

} // namespace lba::log
