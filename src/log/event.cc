/**
 * @file
 * Event record helpers.
 */

#include "log/event.h"

#include <cstdio>

#include "common/assert.h"

namespace lba::log {

const char*
eventTypeName(EventType type)
{
    static const char* const names[] = {
        "Nop", "Halt", "LoadImm", "Move", "IntAlu", "Load", "Store",
        "Branch", "Jump", "IndirectJump", "Call", "IndirectCall",
        "Return", "Syscall", "Alloc", "Free", "Input", "Output", "Lock",
        "Unlock", "ThreadSpawn", "ThreadExit",
    };
    static_assert(sizeof(names) / sizeof(names[0]) == kNumEventTypes,
                  "event name table must cover every event type");
    auto idx = static_cast<std::size_t>(type);
    LBA_ASSERT(idx < kNumEventTypes, "invalid event type");
    return names[idx];
}

std::string
toString(const EventRecord& record)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[t%u pc=0x%llx %s op=%u rd=%u rs1=%u rs2=%u "
                  "addr=0x%llx aux=%llu]",
                  static_cast<unsigned>(record.tid),
                  static_cast<unsigned long long>(record.pc),
                  eventTypeName(record.type),
                  static_cast<unsigned>(record.opcode),
                  static_cast<unsigned>(record.rd),
                  static_cast<unsigned>(record.rs1),
                  static_cast<unsigned>(record.rs2),
                  static_cast<unsigned long long>(record.addr),
                  static_cast<unsigned long long>(record.aux));
    return buf;
}

} // namespace lba::log
