#pragma once
/**
 * @file
 * The capture unit: converts the application core's retirement stream into
 * LBA event records (the "capture" box of the paper's Figure 1).
 */

#include <functional>
#include <vector>

#include "log/event.h"
#include "sim/process.h"

namespace lba::log {

/**
 * A RetireObserver that forms event records and hands them to a sink.
 *
 * The sink typically compresses the record and appends it to the log
 * buffer; in tests it may simply collect records.
 */
class CaptureUnit : public sim::RetireObserver
{
  public:
    using Sink = std::function<void(const EventRecord&)>;

    explicit CaptureUnit(Sink sink) : sink_(std::move(sink)) {}

    /** Build one record from a retirement observation (exposed for tests). */
    static EventRecord makeRecord(const sim::Retired& retired);

    /** Build one record from an OS event (exposed for tests). */
    static EventRecord makeRecord(const sim::OsEvent& event);

    void
    onRetire(const sim::Retired& retired) override
    {
        sink_(makeRecord(retired));
    }

    void
    onOsEvent(const sim::OsEvent& event) override
    {
        sink_(makeRecord(event));
    }

  private:
    Sink sink_;
};

/**
 * A RetireObserver that records a run's entire event stream, exactly
 * as the capture unit would log it — the tool for replaying one
 * stream through several consumers (determinism tests, the dispatch
 * throughput bench) without re-simulating.
 */
class RecordingObserver : public sim::RetireObserver
{
  public:
    void
    onRetire(const sim::Retired& retired) override
    {
        stream.push_back(CaptureUnit::makeRecord(retired));
    }

    void
    onOsEvent(const sim::OsEvent& event) override
    {
        stream.push_back(CaptureUnit::makeRecord(event));
    }

    std::vector<EventRecord> stream;
};

} // namespace lba::log
