#pragma once
/**
 * @file
 * The LBA event-record format.
 *
 * Per the paper (Section 2), as an application instruction retires the
 * capture hardware creates an event record containing the instruction's
 * (a) program counter, (b) type, (c) input and output operand identifiers,
 * and (d) load/store memory address if present. In addition to the
 * instruction-class events we define *annotation* events for OS-level
 * actions (allocation, input, locking) — the information lifeguards such
 * as AddrCheck/TaintCheck/LockSet obtain from instrumented library calls
 * on a real system.
 */

#include <cstdint>
#include <string>

#include "common/types.h"
#include "isa/isa.h"
#include "sim/syscalls.h"

namespace lba::log {

/**
 * Event types carried in the log. Instruction events mirror
 * isa::InstrClass value-for-value; annotation events follow.
 */
enum class EventType : std::uint8_t {
    // Instruction events (values == isa::InstrClass values).
    kNop = 0,
    kHalt,
    kLoadImm,
    kMove,
    kIntAlu,
    kLoad,
    kStore,
    kBranch,
    kJump,
    kIndirectJump,
    kCall,
    kIndirectCall,
    kReturn,
    kSyscall,
    // Annotation events produced at syscall completion.
    kAlloc,
    kFree,
    kInput,
    kOutput,
    kLock,
    kUnlock,
    kThreadSpawn,
    kThreadExit,

    kNumEventTypes
};

/** Number of distinct event types (the dispatch table width). */
inline constexpr unsigned kNumEventTypes =
    static_cast<unsigned>(EventType::kNumEventTypes);

/** Map an instruction class to its event type. */
inline EventType
eventTypeOf(isa::InstrClass cls)
{
    return static_cast<EventType>(static_cast<std::uint8_t>(cls));
}

/** Map an OS event type to its annotation event type. */
inline EventType
eventTypeOf(sim::OsEventType type)
{
    return static_cast<EventType>(
        static_cast<std::uint8_t>(EventType::kAlloc) +
        static_cast<std::uint8_t>(type));
}

/** True for annotation (OS-level) events. */
inline bool
isAnnotation(EventType type)
{
    return static_cast<std::uint8_t>(type) >=
           static_cast<std::uint8_t>(EventType::kAlloc);
}

/** Printable event-type name. */
const char* eventTypeName(EventType type);

/**
 * One log record. For instruction events the fields carry the paper's
 * (pc, type, operand ids, memory address); for annotation events addr/aux
 * carry the event payload (e.g. block base and size for kAlloc).
 */
struct EventRecord
{
    Addr pc = 0;
    EventType type = EventType::kNop;
    ThreadId tid = 0;

    /** Raw opcode (identifies the exact operation within the class). */
    std::uint8_t opcode = 0;
    /** Output operand identifier (destination register). */
    std::uint8_t rd = 0;
    /** Input operand identifiers (source registers). */
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;

    /**
     * Load/store effective address; taken target for control transfers;
     * payload address for annotation events.
     */
    Addr addr = 0;
    /** Annotation payload (e.g. allocation size). */
    std::uint64_t aux = 0;

    bool operator==(const EventRecord&) const = default;
};

/** Render a record for debugging/tests. */
std::string toString(const EventRecord& record);

} // namespace lba::log
