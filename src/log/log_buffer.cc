/**
 * @file
 * Log buffer implementation (lock-free SPSC ring; see the header for
 * the memory-order argument).
 */

#include "log/log_buffer.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::log {

LogBuffer::LogBuffer(std::size_t capacity)
    : capacity_(capacity), ring_(capacity)
{
    LBA_ASSERT(capacity > 0, "log buffer capacity must be positive");
}

LogBuffer::LogBuffer(LogBuffer&& other) noexcept
    : capacity_(other.capacity_),
      ring_(std::move(other.ring_)),
      head_(other.head_.load(std::memory_order_relaxed)),
      tail_(other.tail_.load(std::memory_order_relaxed)),
      head_idx_(other.head_idx_),
      tail_idx_(other.tail_idx_),
      producer_stats_(other.producer_stats_),
      consumer_stats_(other.consumer_stats_)
{
}

bool
LogBuffer::push(const EventRecord& record, Cycles produced_at)
{
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's release in popN(): the slot we
    // are about to overwrite has been fully read before it was freed.
    std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= capacity_) {
        ++producer_stats_.full_events;
        return false;
    }
    ring_[tail_idx_] = {record, produced_at};
    if (++tail_idx_ >= capacity_) tail_idx_ = 0;
    // Release: the entry write above becomes visible before the new
    // tail does, so the consumer never reads a half-written entry.
    tail_.store(tail + 1, std::memory_order_release);
    ++producer_stats_.pushes;
    std::uint64_t occupancy = tail + 1 - head;
    if (occupancy > producer_stats_.max_occupancy) {
        producer_stats_.max_occupancy = occupancy;
    }
    return true;
}

bool
LogBuffer::pop(Entry* out)
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) {
        ++consumer_stats_.empty_events;
        return false;
    }
    if (out) *out = ring_[head_idx_];
    popN(1);
    return true;
}

const LogBuffer::Entry*
LogBuffer::front() const
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return nullptr;
    return &ring_[head_idx_];
}

std::span<const LogBuffer::Entry>
LogBuffer::frontSpan(std::size_t max) const
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    // Acquire pairs with the producer's release in push(): every entry
    // at a position below the tail we read is fully written.
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::size_t n = std::min({max, static_cast<std::size_t>(tail - head),
                              capacity_ - head_idx_});
    return {ring_.data() + head_idx_, n};
}

void
LogBuffer::popN(std::size_t n)
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    LBA_ASSERT(n <= tail_.load(std::memory_order_acquire) - head,
               "popN() past the end of the buffer");
    head_idx_ += n;
    if (head_idx_ >= capacity_) head_idx_ -= capacity_;
    // Release: our reads of the popped entries complete before the
    // producer sees the slots as free for reuse.
    head_.store(head + n, std::memory_order_release);
    consumer_stats_.pops += n;
}

} // namespace lba::log
