/**
 * @file
 * Log buffer implementation.
 */

#include "log/log_buffer.h"

#include <algorithm>

#include "common/assert.h"

namespace lba::log {

LogBuffer::LogBuffer(std::size_t capacity)
    : capacity_(capacity), ring_(capacity)
{
    LBA_ASSERT(capacity > 0, "log buffer capacity must be positive");
}

bool
LogBuffer::push(const EventRecord& record, Cycles produced_at)
{
    if (full()) {
        ++stats_.full_events;
        return false;
    }
    // Wrap by compare-and-subtract: head_ + size_ < 2 * capacity_
    // always, and a branch beats an integer division in this hot loop.
    std::size_t slot = head_ + size_;
    if (slot >= capacity_) slot -= capacity_;
    ring_[slot] = {record, produced_at};
    ++size_;
    ++stats_.pushes;
    if (size_ > stats_.max_occupancy) {
        stats_.max_occupancy = size_;
    }
    return true;
}

bool
LogBuffer::pop(Entry* out)
{
    if (size_ == 0) {
        ++stats_.empty_events;
        return false;
    }
    if (out) *out = ring_[head_];
    popN(1);
    return true;
}

const LogBuffer::Entry*
LogBuffer::front() const
{
    return size_ == 0 ? nullptr : &ring_[head_];
}

std::span<const LogBuffer::Entry>
LogBuffer::frontSpan(std::size_t max) const
{
    std::size_t n = std::min({max, size_, capacity_ - head_});
    return {ring_.data() + head_, n};
}

void
LogBuffer::popN(std::size_t n)
{
    LBA_ASSERT(n <= size_, "popN() past the end of the buffer");
    head_ += n;
    if (head_ >= capacity_) head_ -= capacity_;
    size_ -= n;
    stats_.pops += n;
}

} // namespace lba::log
