/**
 * @file
 * Log buffer implementation.
 */

#include "log/log_buffer.h"

#include "common/assert.h"

namespace lba::log {

LogBuffer::LogBuffer(std::size_t capacity)
    : capacity_(capacity)
{
    LBA_ASSERT(capacity > 0, "log buffer capacity must be positive");
}

bool
LogBuffer::push(const EventRecord& record, Cycles produced_at)
{
    if (full()) {
        ++stats_.full_events;
        return false;
    }
    entries_.push_back({record, produced_at});
    ++stats_.pushes;
    if (entries_.size() > stats_.max_occupancy) {
        stats_.max_occupancy = entries_.size();
    }
    return true;
}

bool
LogBuffer::pop(Entry* out)
{
    if (entries_.empty()) {
        ++stats_.empty_events;
        return false;
    }
    if (out) *out = entries_.front();
    entries_.pop_front();
    ++stats_.pops;
    return true;
}

const LogBuffer::Entry*
LogBuffer::front() const
{
    return entries_.empty() ? nullptr : &entries_.front();
}

} // namespace lba::log
