#pragma once
/**
 * @file
 * AddrCheck lifeguard (paper Section 3, after Nethercote's Valgrind
 * AddrCheck tool): detects accesses to unallocated heap memory, double
 * frees, and memory leaks.
 *
 * Metadata: one validity byte per 8-byte granule (bit per application
 * byte), set by kAlloc annotations and cleared by kFree, plus a live-block
 * table for double-free and leak detection. Only heap-range addresses are
 * checked; stack/global/code accesses are addressable by construction in
 * the simulated process.
 */

#include <unordered_map>
#include <unordered_set>

#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** AddrCheck configuration. */
struct AddrCheckConfig
{
    /** Heap range to check. */
    Addr heap_base = 0x10000000;
    std::uint64_t heap_bytes = 64ull << 20;
    /** Simulated base of the validity shadow table. */
    Addr shadow_base = lifeguard::kShadowBase;
    /** Suppress duplicate unallocated-access reports per granule. */
    bool dedupe_reports = true;
};

/** See file comment. */
class AddrCheck : public lifeguard::Lifeguard
{
  public:
    explicit AddrCheck(const AddrCheckConfig& config = {});

    const char* name() const override { return "AddrCheck"; }

    void finish(lifeguard::CostSink& cost) override;

    /** Fused-tier opt-in: the IR mirror of the handler table. */
    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    /** Bytes currently marked allocated (for tests). */
    std::uint64_t liveBytes() const { return live_bytes_; }

  private:
    // Handler bodies are written once, templated over the cost
    // accumulator, and instantiated for the virtual CostSink (table
    // path) and the fused ir::DirectCost/DeferredCost (IR kernels) —
    // which is what makes the dispatch tiers cost-identical by
    // construction.

    /** kLoad/kStore handler (table path: full body incl. range test). */
    void checkAccess(const log::EventRecord& record,
                     lifeguard::CostSink& cost);

    /** kAlloc handler: mark the block valid, track it as live. */
    void onAlloc(const log::EventRecord& record,
                 lifeguard::CostSink& cost);

    /** kFree handler: clear validity, catch double frees. */
    void onFree(const log::EventRecord& record,
                lifeguard::CostSink& cost);

    /** Heap-range load/store body (after the range guard, which the
     *  IR expresses as charge(2) + rangeExit(heap, 1)). */
    template <typename Cost>
    void heapAccess(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void allocImpl(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void freeImpl(const log::EventRecord& record, Cost& cost);

    /** Mark or clear [base, base+size) validity bits. */
    template <typename Cost>
    void markRange(Addr base, std::uint64_t size, bool allocated,
                   Cost& cost);

    AddrCheckConfig config_;
    /** Handler-IR description (built in the constructor, mirrors the
     *  registrations there). */
    lifeguard::ir::LifeguardIR ir_;
    /** Bit i of entry(g) set => byte g*8+i is allocated. */
    lifeguard::ShadowMemory<std::uint8_t, 8> valid_;
    /** Live heap blocks: base -> size. */
    std::unordered_map<Addr, std::uint64_t> live_;
    /** Granules already reported (dedupe). */
    std::unordered_set<std::uint64_t> reported_;
    std::uint64_t live_bytes_ = 0;
};

} // namespace lba::lifeguards
