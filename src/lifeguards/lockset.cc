/**
 * @file
 * LockSet (Eraser) implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   lock/unlock          : 12 instrs + 1 lockset-table access
 *   load/store           : 3 instrs + 1 shadow read, then by state:
 *     Virgin -> Exclusive      : +2 instrs + 1 shadow write
 *     Exclusive, same thread   : +2 instrs
 *     Exclusive -> Shared(Mod) : +4 instrs + 1 shadow write
 *     Shared/SharedModified    : +18 instrs (lockset hash + intersection)
 *                                + 1 lockset-table read
 *                                + 1 shadow write
 * The intersection is the expensive path — it is why LockSet is the
 * slowest lifeguard in the paper (9.7X average on LBA, vs 3.9X/4.8X).
 */

#include "lifeguards/lockset.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace lba::lifeguards {

using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

LocksetTable::LocksetTable(Addr table_base)
    : table_base_(table_base)
{
    sets_.push_back({}); // id 0: the empty set
    ids_[{}] = kEmpty;
}

std::uint32_t
LocksetTable::idOf(const std::vector<Addr>& sorted_locks)
{
    auto it = ids_.find(sorted_locks);
    if (it != ids_.end()) return it->second;
    auto id = static_cast<std::uint32_t>(sets_.size());
    sets_.push_back(sorted_locks);
    ids_[sorted_locks] = id;
    return id;
}

std::uint32_t
LocksetTable::intersect(std::uint32_t a, std::uint32_t b)
{
    if (a == b) return a;
    if (a == kEmpty || b == kEmpty) return kEmpty;
    auto key = std::minmax(a, b);
    auto memo = intersect_memo_.find(key);
    if (memo != intersect_memo_.end()) return memo->second;

    const std::vector<Addr>& sa = locks(a);
    const std::vector<Addr>& sb = locks(b);
    std::vector<Addr> out;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(out));
    std::uint32_t id = idOf(out);
    intersect_memo_[key] = id;
    return id;
}

const std::vector<Addr>&
LocksetTable::locks(std::uint32_t id) const
{
    LBA_ASSERT(id < sets_.size(), "invalid lockset id");
    return sets_[id];
}

LockSet::LockSet(const LockSetConfig& config)
    : config_(config),
      table_(config.lockset_table_base),
      granules_(config.shadow_base)
{
    // The handler table: memory accesses drive the Eraser state
    // machine, lock annotations maintain the held-lock sets, alloc
    // annotations reset recycled granules. Each captureless generic
    // lambda below serves as BOTH the table entry (CostSink
    // instantiation) and the fused IR kernel (DirectCost/DeferredCost
    // instantiations), so the dispatch tiers share one handler body.
    auto load = [](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
        static_cast<LockSet&>(self).handleAccess(record, false, cost);
    };
    auto store = [](lifeguard::Lifeguard& self,
                    const EventRecord& record, auto& cost) {
        static_cast<LockSet&>(self).handleAccess(record, true, cost);
    };
    setHandler(EventType::kLoad, load);
    setHandler(EventType::kStore, store);
    // The IR form of the load/store handlers hoists the check-range
    // filter (2 instrs on the fall-through) into a kRangeExit op so
    // the fused loop skips filtered records without a call; the
    // kernel is the post-filter Eraser state machine. With no
    // configured range the filter compiles away entirely, exactly as
    // in handleAccess.
    auto load_body = [](lifeguard::Lifeguard& self,
                        const EventRecord& record, auto& cost) {
        static_cast<LockSet&>(self).accessImpl(record, false, cost);
    };
    auto store_body = [](lifeguard::Lifeguard& self,
                         const EventRecord& record, auto& cost) {
        static_cast<LockSet&>(self).accessImpl(record, true, cost);
    };
    if (config.check_bytes != 0) {
        ir_.define(EventType::kLoad)
            .rangeExit(config.check_base, config.check_bytes, 2)
            .kernel(load_body);
        ir_.define(EventType::kStore)
            .rangeExit(config.check_base, config.check_bytes, 2)
            .kernel(store_body);
    } else {
        ir_.define(EventType::kLoad).kernel(load_body);
        ir_.define(EventType::kStore).kernel(store_body);
    }
    auto describe = [this](EventType type, auto handler) {
        setHandler(type, handler);
        ir_.define(type).kernel(handler);
    };
    describe(EventType::kLock, [](lifeguard::Lifeguard& self,
                                  const EventRecord& record, auto& cost) {
        static_cast<LockSet&>(self).handleLock(record, true, cost);
    });
    describe(EventType::kUnlock,
             [](lifeguard::Lifeguard& self, const EventRecord& record,
                auto& cost) {
                 if (record.aux != 0) {
                     static_cast<LockSet&>(self).handleLock(record, false,
                                                            cost);
                 }
             });
    describe(EventType::kAlloc, [](lifeguard::Lifeguard& self,
                                   const EventRecord& record,
                                   auto& cost) {
        static_cast<LockSet&>(self).allocImpl(record, cost);
    });
}

std::uint32_t
LockSet::threadLockset(ThreadId tid) const
{
    auto it = thread_locks_.find(tid);
    return it == thread_locks_.end() ? LocksetTable::kEmpty
                                     : it->second.id;
}

LockSet::State
LockSet::granuleState(Addr addr) const
{
    const Granule* g = granules_.find(addr);
    return g ? static_cast<State>(g->state) : kVirgin;
}

template <typename Cost>
void
LockSet::handleLock(const EventRecord& record, bool acquire,
                    Cost& cost)
{
    cost.instrs(12);
    ThreadLocks& tl = thread_locks_[record.tid];
    if (acquire) {
        auto it = std::lower_bound(tl.held.begin(), tl.held.end(),
                                   record.addr);
        if (it == tl.held.end() || *it != record.addr) {
            tl.held.insert(it, record.addr);
        }
    } else {
        auto it = std::lower_bound(tl.held.begin(), tl.held.end(),
                                   record.addr);
        if (it != tl.held.end() && *it == record.addr) {
            tl.held.erase(it);
        }
    }
    tl.id = table_.idOf(tl.held);
    cost.memAccess(table_.simAddr(tl.id), true);
}

template <typename Cost>
void
LockSet::handleAccess(const EventRecord& record, bool is_write,
                      Cost& cost)
{
    // Range filter (the IR form is a kRangeExit op — keep in
    // lockstep with the constructor's description).
    if (config_.check_bytes != 0 &&
        (record.addr < config_.check_base ||
         record.addr >= config_.check_base + config_.check_bytes)) {
        cost.instrs(2); // range filter
        return;
    }
    accessImpl(record, is_write, cost);
}

template <typename Cost>
void
LockSet::accessImpl(const EventRecord& record, bool is_write,
                    Cost& cost)
{
    Addr addr = record.addr;
    cost.instrs(3);
    Granule& g = granules_.entry(addr);
    cost.memAccess(granules_.shadowAddr(addr), false);

    ThreadId tid = record.tid;
    std::uint32_t held = threadLockset(tid);

    switch (g.state) {
      case kVirgin:
        g.state = kExclusive;
        g.owner = tid;
        cost.instrs(2);
        cost.memAccess(granules_.shadowAddr(addr), true);
        return;

      case kExclusive:
        if (g.owner == tid) {
            cost.instrs(2);
            return;
        }
        // Second thread: initialize the candidate set from its locks.
        g.state = is_write ? kSharedModified : kShared;
        g.lockset = held;
        cost.instrs(4);
        cost.memAccess(granules_.shadowAddr(addr), true);
        break;

      case kShared: {
        std::uint32_t refined = table_.intersect(g.lockset, held);
        bool changed = refined != g.lockset ||
                       (is_write && g.state != kSharedModified);
        g.lockset = refined;
        if (is_write) g.state = kSharedModified;
        cost.instrs(18);
        cost.memAccess(table_.simAddr(g.lockset), false);
        // The shadow word is written back only when it changed.
        if (changed) cost.memAccess(granules_.shadowAddr(addr), true);
        break;
      }

      case kSharedModified: {
        std::uint32_t refined = table_.intersect(g.lockset, held);
        bool changed = refined != g.lockset;
        g.lockset = refined;
        cost.instrs(18);
        cost.memAccess(table_.simAddr(g.lockset), false);
        if (changed) cost.memAccess(granules_.shadowAddr(addr), true);
        break;
      }

      default:
        LBA_ASSERT(false, "corrupt granule state");
    }

    if (g.state == kSharedModified && g.lockset == LocksetTable::kEmpty) {
        std::uint64_t granule = addr >> 3;
        if (config_.dedupe_reports && !reported_.insert(granule).second) {
            return;
        }
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "%s with empty candidate lockset",
                      is_write ? "write" : "read");
        report({FindingKind::kDataRace, record.pc, addr, tid, msg});
    }
}

template <typename Cost>
void
LockSet::allocImpl(const EventRecord& record, Cost& cost)
{
    // Reallocation resets the Eraser state machine: the new owner
    // must not inherit sharing history (or races!) from the block's
    // previous life. Eraser does this via its malloc hook.
    cost.instrs(6);
    if (record.addr != 0) {
        for (Addr g = record.addr & ~7ull; g < record.addr + record.aux;
             g += 8) {
            granules_.entry(g) = Granule{};
            reported_.erase(g >> 3);
            // One 8-byte shadow store per granule (memset loop).
            cost.memAccess(granules_.shadowAddr(g), true);
        }
    }
}

} // namespace lba::lifeguards
