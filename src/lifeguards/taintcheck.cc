/**
 * @file
 * TaintCheck implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   li (constant)        : 1 instr   (clear destination bit)
 *   move                 : 2 instrs  (copy bit)
 *   ALU                  : 4 instrs  (or source bits into destination)
 *   load                 : 6 instrs + 1 shadow read
 *   store                : 6 instrs + 1 shadow write
 *   indirect jump/call,
 *   return               : 2 instrs  (test + conditional report)
 *   input annotation     : 6 instrs + 2 instrs and 1 shadow write/granule
 *   alloc annotation     : 4 instrs + 2 instrs and 1 shadow write/granule
 *                          (fresh memory is untainted)
 */

#include "lifeguards/taintcheck.h"

#include <cstdio>

namespace lba::lifeguards {

using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

namespace {

/** Lower a templated TaintCheck handler into one captureless generic
 *  lambda, registered BOTH as the table entry (CostSink instantiation)
 *  and as the IR kernel (DirectCost/DeferredCost instantiations) — one
 *  body, three cost flavours, no way for the tiers to diverge. */
#define TAINT_HANDLER(method)                                            \
    [](lifeguard::Lifeguard& self, const EventRecord& record,            \
       auto& cost) { static_cast<TaintCheck&>(self).method(record,       \
                                                          cost); }

} // namespace

TaintCheck::TaintCheck(const TaintCheckConfig& config)
    : config_(config), taint_(config.shadow_base)
{
    // The handler table: TaintCheck watches *all* dataflow-relevant
    // instruction classes (the paper's distinction from
    // address-triggered schemes) plus the input/alloc annotations.
    // Every handler mutates taint state, so the IR description is one
    // kKernel per event type.
    auto describe = [this](EventType type, auto handler) {
        setHandler(type, handler);
        ir_.define(type).kernel(handler);
    };
    describe(EventType::kLoadImm, TAINT_HANDLER(onLoadImm));
    describe(EventType::kMove, TAINT_HANDLER(onMove));
    describe(EventType::kIntAlu, TAINT_HANDLER(onAlu));
    describe(EventType::kLoad, TAINT_HANDLER(onLoad));
    describe(EventType::kStore, TAINT_HANDLER(onStore));
    describe(EventType::kIndirectJump, TAINT_HANDLER(onIndirectTransfer));
    describe(EventType::kIndirectCall, TAINT_HANDLER(onIndirectTransfer));
    describe(EventType::kReturn, TAINT_HANDLER(onReturn));
    describe(EventType::kInput, TAINT_HANDLER(onInput));
    describe(EventType::kAlloc, TAINT_HANDLER(onAlloc));
}

#undef TAINT_HANDLER

bool
TaintCheck::regBit(ThreadId tid, RegIndex reg) const
{
    auto it = reg_taint_.find(tid);
    return it != reg_taint_.end() && ((it->second >> reg) & 1u);
}

void
TaintCheck::setRegBit(ThreadId tid, RegIndex reg, bool tainted)
{
    if (reg == isa::kRegZero) return; // r0 is never tainted
    std::uint32_t& mask = reg_taint_[tid];
    if (tainted) {
        mask |= 1u << reg;
    } else {
        mask &= ~(1u << reg);
    }
}

bool
TaintCheck::regTainted(ThreadId tid, RegIndex reg) const
{
    return regBit(tid, reg);
}

bool
TaintCheck::memTainted(Addr addr, unsigned bytes) const
{
    for (unsigned b = 0; b < bytes; ++b) {
        const std::uint8_t* entry = taint_.find(addr + b);
        if (entry && (*entry >> ((addr + b) & 7)) & 1u) return true;
    }
    return false;
}

template <typename Cost>
bool
TaintCheck::readMemTaint(Addr addr, unsigned bytes, Cost& cost)
{
    cost.memAccess(taint_.shadowAddr(addr), false);
    bool tainted = false;
    for (unsigned b = 0; b < bytes; ++b) {
        Addr byte = addr + b;
        if (b > 0 && (byte & 7) == 0) {
            cost.instrs(1);
            cost.memAccess(taint_.shadowAddr(byte), false);
        }
        const std::uint8_t* entry = taint_.find(byte);
        if (entry && (*entry >> (byte & 7)) & 1u) tainted = true;
    }
    return tainted;
}

template <typename Cost>
void
TaintCheck::writeMemTaint(Addr addr, unsigned bytes, bool tainted,
                          Cost& cost)
{
    // Functional update: per-granule taint masks.
    Addr end = addr + bytes;
    for (Addr g = addr & ~7ull; g < end; g += 8) {
        std::uint8_t mask = 0;
        for (unsigned b = 0; b < 8; ++b) {
            Addr byte = g + b;
            if (byte >= addr && byte < end) {
                mask |= static_cast<std::uint8_t>(1u << b);
            }
        }
        std::uint8_t& entry = taint_.entry(g);
        entry = tainted ? (entry | mask)
                        : static_cast<std::uint8_t>(entry & ~mask);
    }
    // Cost: bulk marking (input buffers, fresh allocations) uses 8-byte
    // shadow stores covering 64 application bytes each; a store-sized
    // update is a single read-modify-write of one shadow byte.
    for (Addr g = addr & ~7ull; g < end; g += 64) {
        cost.instrs(1);
        cost.memAccess(taint_.shadowAddr(g), true);
    }
}

template <typename Cost>
void
TaintCheck::checkJump(const EventRecord& record, RegIndex source_reg,
                      Cost& cost)
{
    cost.instrs(2);
    if (!regBit(record.tid, source_reg)) return;
    if (config_.dedupe_reports && !reported_.insert(record.pc).second) {
        return;
    }
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "control transfer through tainted register r%u",
                  static_cast<unsigned>(source_reg));
    report({FindingKind::kTaintedJump, record.pc, record.addr,
            record.tid, msg});
}

template <typename Cost>
void
TaintCheck::onLoadImm(const EventRecord& record, Cost& cost)
{
    cost.instrs(1);
    if (static_cast<isa::Opcode>(record.opcode) == isa::Opcode::kLi) {
        setRegBit(record.tid, record.rd, false);
    }
    // lih mixes an immediate into rd: taint of rd is unchanged.
}

template <typename Cost>
void
TaintCheck::onMove(const EventRecord& record, Cost& cost)
{
    cost.instrs(2);
    setRegBit(record.tid, record.rd, regBit(record.tid, record.rs1));
}

template <typename Cost>
void
TaintCheck::onAlu(const EventRecord& record, Cost& cost)
{
    cost.instrs(4);
    auto op = static_cast<isa::Opcode>(record.opcode);
    bool tainted = regBit(record.tid, record.rs1);
    if (isa::readsRs2(op)) {
        tainted = tainted || regBit(record.tid, record.rs2);
    }
    setRegBit(record.tid, record.rd, tainted);
}

template <typename Cost>
void
TaintCheck::onLoad(const EventRecord& record, Cost& cost)
{
    cost.instrs(6);
    unsigned bytes = static_cast<unsigned>(record.aux ? record.aux : 1);
    bool tainted = readMemTaint(record.addr, bytes, cost);
    setRegBit(record.tid, record.rd, tainted);
}

template <typename Cost>
void
TaintCheck::onStore(const EventRecord& record, Cost& cost)
{
    cost.instrs(6);
    unsigned bytes = static_cast<unsigned>(record.aux ? record.aux : 1);
    writeMemTaint(record.addr, bytes, regBit(record.tid, record.rs2),
                  cost);
}

template <typename Cost>
void
TaintCheck::onIndirectTransfer(const EventRecord& record, Cost& cost)
{
    checkJump(record, record.rs1, cost);
}

template <typename Cost>
void
TaintCheck::onReturn(const EventRecord& record, Cost& cost)
{
    checkJump(record, isa::kRegLr, cost);
}

template <typename Cost>
void
TaintCheck::onInput(const EventRecord& record, Cost& cost)
{
    cost.instrs(6);
    writeMemTaint(record.addr, static_cast<unsigned>(record.aux), true,
                  cost);
}

template <typename Cost>
void
TaintCheck::onAlloc(const EventRecord& record, Cost& cost)
{
    cost.instrs(4);
    if (record.addr != 0 && record.aux != 0) {
        writeMemTaint(record.addr, static_cast<unsigned>(record.aux),
                      false, cost);
    }
}

} // namespace lba::lifeguards
