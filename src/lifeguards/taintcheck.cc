/**
 * @file
 * TaintCheck implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   li (constant)        : 1 instr   (clear destination bit)
 *   move                 : 2 instrs  (copy bit)
 *   ALU                  : 4 instrs  (or source bits into destination)
 *   load                 : 6 instrs + 1 shadow read
 *   store                : 6 instrs + 1 shadow write
 *   indirect jump/call,
 *   return               : 2 instrs  (test + conditional report)
 *   input annotation     : 6 instrs + 2 instrs and 1 shadow write/granule
 *   alloc annotation     : 4 instrs + 2 instrs and 1 shadow write/granule
 *                          (fresh memory is untainted)
 */

#include "lifeguards/taintcheck.h"

#include <cstdio>

namespace lba::lifeguards {

using lifeguard::CostSink;
using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

TaintCheck::TaintCheck(const TaintCheckConfig& config)
    : config_(config), taint_(config.shadow_base)
{
    // The handler table: TaintCheck watches *all* dataflow-relevant
    // instruction classes (the paper's distinction from
    // address-triggered schemes) plus the input/alloc annotations.
    onEvent<&TaintCheck::onLoadImm>(EventType::kLoadImm);
    onEvent<&TaintCheck::onMove>(EventType::kMove);
    onEvent<&TaintCheck::onAlu>(EventType::kIntAlu);
    onEvent<&TaintCheck::onLoad>(EventType::kLoad);
    onEvent<&TaintCheck::onStore>(EventType::kStore);
    onEvent<&TaintCheck::onIndirectTransfer>(EventType::kIndirectJump);
    onEvent<&TaintCheck::onIndirectTransfer>(EventType::kIndirectCall);
    onEvent<&TaintCheck::onReturn>(EventType::kReturn);
    onEvent<&TaintCheck::onInput>(EventType::kInput);
    onEvent<&TaintCheck::onAlloc>(EventType::kAlloc);
}

bool
TaintCheck::regBit(ThreadId tid, RegIndex reg) const
{
    auto it = reg_taint_.find(tid);
    return it != reg_taint_.end() && ((it->second >> reg) & 1u);
}

void
TaintCheck::setRegBit(ThreadId tid, RegIndex reg, bool tainted)
{
    if (reg == isa::kRegZero) return; // r0 is never tainted
    std::uint32_t& mask = reg_taint_[tid];
    if (tainted) {
        mask |= 1u << reg;
    } else {
        mask &= ~(1u << reg);
    }
}

bool
TaintCheck::regTainted(ThreadId tid, RegIndex reg) const
{
    return regBit(tid, reg);
}

bool
TaintCheck::memTainted(Addr addr, unsigned bytes) const
{
    for (unsigned b = 0; b < bytes; ++b) {
        const std::uint8_t* entry = taint_.find(addr + b);
        if (entry && (*entry >> ((addr + b) & 7)) & 1u) return true;
    }
    return false;
}

bool
TaintCheck::readMemTaint(Addr addr, unsigned bytes, CostSink& cost)
{
    cost.memAccess(taint_.shadowAddr(addr), false);
    bool tainted = false;
    for (unsigned b = 0; b < bytes; ++b) {
        Addr byte = addr + b;
        if (b > 0 && (byte & 7) == 0) {
            cost.instrs(1);
            cost.memAccess(taint_.shadowAddr(byte), false);
        }
        const std::uint8_t* entry = taint_.find(byte);
        if (entry && (*entry >> (byte & 7)) & 1u) tainted = true;
    }
    return tainted;
}

void
TaintCheck::writeMemTaint(Addr addr, unsigned bytes, bool tainted,
                          CostSink& cost)
{
    // Functional update: per-granule taint masks.
    Addr end = addr + bytes;
    for (Addr g = addr & ~7ull; g < end; g += 8) {
        std::uint8_t mask = 0;
        for (unsigned b = 0; b < 8; ++b) {
            Addr byte = g + b;
            if (byte >= addr && byte < end) {
                mask |= static_cast<std::uint8_t>(1u << b);
            }
        }
        std::uint8_t& entry = taint_.entry(g);
        entry = tainted ? (entry | mask)
                        : static_cast<std::uint8_t>(entry & ~mask);
    }
    // Cost: bulk marking (input buffers, fresh allocations) uses 8-byte
    // shadow stores covering 64 application bytes each; a store-sized
    // update is a single read-modify-write of one shadow byte.
    for (Addr g = addr & ~7ull; g < end; g += 64) {
        cost.instrs(1);
        cost.memAccess(taint_.shadowAddr(g), true);
    }
}

void
TaintCheck::checkJump(const EventRecord& record, RegIndex source_reg,
                      CostSink& cost)
{
    cost.instrs(2);
    if (!regBit(record.tid, source_reg)) return;
    if (config_.dedupe_reports && !reported_.insert(record.pc).second) {
        return;
    }
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "control transfer through tainted register r%u",
                  static_cast<unsigned>(source_reg));
    report({FindingKind::kTaintedJump, record.pc, record.addr,
            record.tid, msg});
}

void
TaintCheck::onLoadImm(const EventRecord& record, CostSink& cost)
{
    cost.instrs(1);
    if (static_cast<isa::Opcode>(record.opcode) == isa::Opcode::kLi) {
        setRegBit(record.tid, record.rd, false);
    }
    // lih mixes an immediate into rd: taint of rd is unchanged.
}

void
TaintCheck::onMove(const EventRecord& record, CostSink& cost)
{
    cost.instrs(2);
    setRegBit(record.tid, record.rd, regBit(record.tid, record.rs1));
}

void
TaintCheck::onAlu(const EventRecord& record, CostSink& cost)
{
    cost.instrs(4);
    auto op = static_cast<isa::Opcode>(record.opcode);
    bool tainted = regBit(record.tid, record.rs1);
    if (isa::readsRs2(op)) {
        tainted = tainted || regBit(record.tid, record.rs2);
    }
    setRegBit(record.tid, record.rd, tainted);
}

void
TaintCheck::onLoad(const EventRecord& record, CostSink& cost)
{
    cost.instrs(6);
    unsigned bytes = static_cast<unsigned>(record.aux ? record.aux : 1);
    bool tainted = readMemTaint(record.addr, bytes, cost);
    setRegBit(record.tid, record.rd, tainted);
}

void
TaintCheck::onStore(const EventRecord& record, CostSink& cost)
{
    cost.instrs(6);
    unsigned bytes = static_cast<unsigned>(record.aux ? record.aux : 1);
    writeMemTaint(record.addr, bytes, regBit(record.tid, record.rs2),
                  cost);
}

void
TaintCheck::onIndirectTransfer(const EventRecord& record, CostSink& cost)
{
    checkJump(record, record.rs1, cost);
}

void
TaintCheck::onReturn(const EventRecord& record, CostSink& cost)
{
    checkJump(record, isa::kRegLr, cost);
}

void
TaintCheck::onInput(const EventRecord& record, CostSink& cost)
{
    cost.instrs(6);
    writeMemTaint(record.addr, static_cast<unsigned>(record.aux), true,
                  cost);
}

void
TaintCheck::onAlloc(const EventRecord& record, CostSink& cost)
{
    cost.instrs(4);
    if (record.addr != 0 && record.aux != 0) {
        writeMemTaint(record.addr, static_cast<unsigned>(record.aux),
                      false, cost);
    }
}

} // namespace lba::lifeguards
