/**
 * @file
 * MemLeak implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   non-memory event      : no handler work (dispatch cost only)
 *   load/store, non-heap  : 3 instrs  (range check, fall through)
 *   load/store, heap      : 4 instrs + 1 shadow read + 1 shadow write
 *                           (read-modify-write of the granule's
 *                           last-touch stamp — every heap access pays
 *                           a metadata *store*, unlike AddrCheck's
 *                           read-only probe)
 *   syscall               : 2 instrs (epoch tick); every sweep_period-th
 *                           syscall additionally walks the block table
 *                           at 4 instrs + 1 shadow read per live block
 *   alloc/free            : ~12 instrs + 1 instr and 1 shadow write per
 *                           64 bytes of block (stamp seeding/clearing)
 */

#include "lifeguards/memleak.h"

#include <cstdio>

namespace lba::lifeguards {

using lifeguard::CostSink;
using lifeguard::Finding;
using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

MemLeak::MemLeak(const MemLeakConfig& config)
    : config_(config), stamps_(config.shadow_base)
{
    // The handler table: every event type MemLeak does not register
    // costs dispatch cycles only.
    onEvent<&MemLeak::checkAccess>(EventType::kLoad);
    onEvent<&MemLeak::checkAccess>(EventType::kStore);
    onEvent<&MemLeak::onSyscall>(EventType::kSyscall);
    onEvent<&MemLeak::onAlloc>(EventType::kAlloc);
    onEvent<&MemLeak::onFree>(EventType::kFree);

    // The IR mirror of the table, for the fused dispatch tier.
    auto touched = [](lifeguard::Lifeguard& self,
                      const EventRecord& record, auto& cost) {
        static_cast<MemLeak&>(self).touch(record, cost);
    };
    for (EventType type : {EventType::kLoad, EventType::kStore}) {
        ir_.define(type)
            .charge(2)
            .rangeExit(config.heap_base, config.heap_bytes, 1)
            .kernel(touched);
    }
    ir_.define(EventType::kSyscall)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<MemLeak&>(self).tickImpl(record, cost);
        });
    ir_.define(EventType::kAlloc)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<MemLeak&>(self).allocImpl(record, cost);
        });
    ir_.define(EventType::kFree)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<MemLeak&>(self).freeImpl(record, cost);
        });
}

MemLeak::Block*
MemLeak::owningBlock(Addr addr)
{
    // Host-side range lookup; the simulated cost of the equivalent
    // shadow-resident lookup is charged by the callers.
    auto it = blocks_.upper_bound(addr);
    if (it == blocks_.begin()) return nullptr;
    --it;
    if (addr >= it->first && addr < it->first + it->second.size) {
        return &it->second;
    }
    return nullptr;
}

void
MemLeak::checkAccess(const EventRecord& record, CostSink& cost)
{
    // Range test: two compares against the heap bounds. (The IR
    // expresses exactly this prologue as charge(2) + rangeExit(heap,
    // 1) — keep the two in lockstep.)
    cost.instrs(2);
    Addr addr = record.addr;
    if (addr < config_.heap_base ||
        addr >= config_.heap_base + config_.heap_bytes) {
        cost.instrs(1); // fall-through branch
        return;
    }
    touch(record, cost);
}

template <typename Cost>
void
MemLeak::touch(const EventRecord& record, Cost& cost)
{
    Addr addr = record.addr;
    // Stamp read-modify-write: index computation, load, store, plus
    // the block-table refresh.
    cost.instrs(4);
    cost.memAccess(stamps_.shadowAddr(addr), false);
    cost.memAccess(stamps_.shadowAddr(addr), true);

    stamps_.entry(addr) = static_cast<std::uint32_t>(epoch_);
    if (Block* block = owningBlock(addr)) {
        block->last_epoch = epoch_;
    }
}

template <typename Cost>
void
MemLeak::tickImpl(const EventRecord& record, Cost& cost)
{
    // Epoch tick: increment + period test.
    cost.instrs(2);
    ++epoch_;
    if (epoch_ % config_.sweep_period != 0) return;

    // Decay sweep: walk the block table; each block costs the stamp
    // probe plus the staleness compare.
    ++sweeps_;
    for (auto& [base, block] : blocks_) {
        cost.instrs(4);
        cost.memAccess(stamps_.shadowAddr(base), false);
        if (block.suspected) continue;
        if (epoch_ - block.last_epoch < config_.stale_epochs) continue;
        block.suspected = true;
        char msg[96];
        std::snprintf(
            msg, sizeof(msg),
            "block of %llu bytes untouched for %llu syscalls",
            static_cast<unsigned long long>(block.size),
            static_cast<unsigned long long>(epoch_ - block.last_epoch));
        report({FindingKind::kLeakSuspect, block.alloc_pc, base,
                block.tid, msg});
    }
    (void)record;
}

void
MemLeak::onSyscall(const EventRecord& record, CostSink& cost)
{
    tickImpl(record, cost);
}

template <typename Cost>
void
MemLeak::allocImpl(const EventRecord& record, Cost& cost)
{
    // Block-table insert + allocation-site capture.
    cost.instrs(12);
    if (record.addr == 0) return; // failed allocation
    blocks_[record.addr] =
        Block{record.aux, record.pc, record.tid, epoch_, false};
    // Seed the granule stamps (an 8-byte store covers 2 word-wide
    // entries = 32 application bytes; charge per 64 like a 2x-unrolled
    // loop).
    Addr end = record.addr + record.aux;
    for (Addr g = record.addr & ~15ull; g < end; g += 16) {
        stamps_.entry(g) = static_cast<std::uint32_t>(epoch_);
    }
    for (Addr g = record.addr & ~15ull; g < end; g += 64) {
        cost.instrs(1);
        cost.memAccess(stamps_.shadowAddr(g), true);
    }
}

void
MemLeak::onAlloc(const EventRecord& record, CostSink& cost)
{
    allocImpl(record, cost);
}

template <typename Cost>
void
MemLeak::freeImpl(const EventRecord& record, Cost& cost)
{
    cost.instrs(12);
    auto it = blocks_.find(record.addr);
    if (it == blocks_.end()) return; // AddrCheck owns double-free
    // Clear the stamps (same store pattern as seeding).
    Addr end = record.addr + it->second.size;
    for (Addr g = record.addr & ~15ull; g < end; g += 16) {
        stamps_.entry(g) = 0;
    }
    for (Addr g = record.addr & ~15ull; g < end; g += 64) {
        cost.instrs(1);
        cost.memAccess(stamps_.shadowAddr(g), true);
    }
    blocks_.erase(it);
}

void
MemLeak::onFree(const EventRecord& record, CostSink& cost)
{
    freeImpl(record, cost);
}

void
MemLeak::finish(CostSink& cost)
{
    // End-of-run scan: anything still tracked is a definite leak.
    cost.instrs(5);
    for (const auto& [base, block] : blocks_) {
        cost.instrs(20);
        char msg[96];
        std::snprintf(msg, sizeof(msg), "leaked block of %llu bytes",
                      static_cast<unsigned long long>(block.size));
        report({FindingKind::kMemoryLeak, block.alloc_pc, base,
                block.tid, msg});
    }
}

} // namespace lba::lifeguards
