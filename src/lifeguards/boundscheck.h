#pragma once
/**
 * @file
 * BoundsCheck lifeguard: MTE-style memory tagging (after ARM MTE; see
 * PAPERS.md "ARM MTE Performance in Practice"). Every live heap block
 * is coloured with a 4-bit tag in shadow memory; loads and stores do a
 * single constant-cost tag probe, so the per-access overhead curve sits
 * deliberately *below* AddrCheck's byte-granular validity bits — the
 * comparison bench/fig_mte.cc measures.
 *
 * Metadata: one 4-bit tag per 16-byte granule (a byte-wide shadow
 * entry; tag 0 = untagged/free, tags 1..15 cycle per allocation), plus
 * a live-block table so kFree can retag the whole block (the free
 * record carries no size). A load/store whose granule tag is 0 is a
 * mistag: the pointer refers to memory whose allocation tag was
 * retired (use-after-free / out-of-bounds into untagged space),
 * reported as FindingKind::kTagMismatch. Like real MTE the check is
 * probabilistic across reuse: a freed-then-recoloured granule passes
 * with a stale pointer — BoundsCheck trades that 1-in-16 alias window
 * for a constant-cost check, which is exactly the MTE cost profile the
 * platform wants to contrast with AddrCheck.
 */

#include <unordered_map>
#include <unordered_set>

#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** BoundsCheck configuration. */
struct BoundsCheckConfig
{
    /** Heap range to check. */
    Addr heap_base = 0x10000000;
    std::uint64_t heap_bytes = 64ull << 20;
    /** Simulated base of the tag shadow table (distinct per guard). */
    Addr shadow_base = lifeguard::kShadowBase + 0x2000000000ull;
    /** Suppress duplicate mistag reports per granule. */
    bool dedupe_reports = true;
};

/** See file comment. */
class BoundsCheck : public lifeguard::Lifeguard
{
  public:
    explicit BoundsCheck(const BoundsCheckConfig& config = {});

    const char* name() const override { return "BoundsCheck"; }

    /** Fused-tier opt-in: the IR mirror of the handler table. */
    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    /** Tag most recently assigned (for tests; 0 = none yet). */
    std::uint8_t lastTag() const { return next_tag_; }

    /** Bytes currently tagged live (for tests). */
    std::uint64_t liveBytes() const { return live_bytes_; }

  private:
    // Handler bodies are written once, templated over the cost
    // accumulator, and instantiated for the virtual CostSink (table
    // path) and the fused ir::DirectCost/DeferredCost (IR kernels) —
    // which keeps the dispatch tiers cost-identical by construction.

    /** kLoad/kStore handler (table path: full body incl. range test). */
    void checkAccess(const log::EventRecord& record,
                     lifeguard::CostSink& cost);

    /** kAlloc handler: colour the block with the next tag. */
    void onAlloc(const log::EventRecord& record,
                 lifeguard::CostSink& cost);

    /** kFree handler: retag the block to 0 (untagged). */
    void onFree(const log::EventRecord& record,
                lifeguard::CostSink& cost);

    /** Heap-range load/store body: one shadow probe + tag compare. */
    template <typename Cost>
    void tagProbe(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void allocImpl(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void freeImpl(const log::EventRecord& record, Cost& cost);

    /** Colour [base, base+size) granules with @p tag. */
    template <typename Cost>
    void colourRange(Addr base, std::uint64_t size, std::uint8_t tag,
                     Cost& cost);

    BoundsCheckConfig config_;
    /** Handler-IR description (built in the constructor, mirrors the
     *  registrations there). */
    lifeguard::ir::LifeguardIR ir_;
    /** 4-bit tag per 16-byte granule (byte-wide entries; 0 = free). */
    lifeguard::ShadowMemory<std::uint8_t, 16> tags_;
    /** Live heap blocks: base -> size (free records carry no size). */
    std::unordered_map<Addr, std::uint64_t> live_;
    /** Granules already reported (dedupe). */
    std::unordered_set<std::uint64_t> reported_;
    /** Next allocation colour, cycling 1..15 (0 is reserved = free). */
    std::uint8_t next_tag_ = 0;
    std::uint64_t live_bytes_ = 0;
};

} // namespace lba::lifeguards
