/**
 * @file
 * BoundsCheck implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   non-memory event      : no handler work (dispatch cost only)
 *   load/store, non-heap  : 3 instrs  (range check, fall through)
 *   load/store, heap      : 5 instrs + 1 shadow read (constant — the
 *                           MTE-style tag probe never straddles: one
 *                           granule decides the access)
 *   alloc/free            : ~8 instrs + 1 instr and 1 shadow write per
 *                           128 bytes of block (an 8-byte store colours
 *                           8 byte-wide granule entries at once)
 * Compare AddrCheck: 8 instrs + 1..2 shadow reads per heap access over
 * 8-byte granules, and a shadow write per 64 block bytes — BoundsCheck
 * is cheaper on every axis, which is the MTE claim the fig_mte bench
 * gates.
 */

#include "lifeguards/boundscheck.h"

#include <cstdio>

namespace lba::lifeguards {

using lifeguard::CostSink;
using lifeguard::Finding;
using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

BoundsCheck::BoundsCheck(const BoundsCheckConfig& config)
    : config_(config), tags_(config.shadow_base)
{
    // The handler table: every event type BoundsCheck does not
    // register costs dispatch cycles only.
    onEvent<&BoundsCheck::checkAccess>(EventType::kLoad);
    onEvent<&BoundsCheck::checkAccess>(EventType::kStore);
    onEvent<&BoundsCheck::onAlloc>(EventType::kAlloc);
    onEvent<&BoundsCheck::onFree>(EventType::kFree);

    // The IR mirror of the table, for the fused dispatch tier. The
    // load/store prologue (2-instruction range test, 1-instruction
    // fall-through) is IR ops so the fused loop skips non-heap records
    // without entering a kernel; the tag probe and the annotation
    // handlers are shared-body kernels.
    auto probe = [](lifeguard::Lifeguard& self, const EventRecord& record,
                    auto& cost) {
        static_cast<BoundsCheck&>(self).tagProbe(record, cost);
    };
    for (EventType type : {EventType::kLoad, EventType::kStore}) {
        ir_.define(type)
            .charge(2)
            .rangeExit(config.heap_base, config.heap_bytes, 1)
            .kernel(probe);
    }
    ir_.define(EventType::kAlloc)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<BoundsCheck&>(self).allocImpl(record, cost);
        });
    ir_.define(EventType::kFree)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<BoundsCheck&>(self).freeImpl(record, cost);
        });
}

template <typename Cost>
void
BoundsCheck::colourRange(Addr base, std::uint64_t size, std::uint8_t tag,
                         Cost& cost)
{
    if (size == 0) return;
    Addr end = base + size;
    constexpr Addr kGranule = 16;
    for (Addr g = base & ~(kGranule - 1); g < end; g += kGranule) {
        tags_.entry(g) = tag;
    }
    // Cost: a real handler colours the byte-wide shadow with 8-byte
    // stores — one store covers 8 granule entries = 128 application
    // bytes.
    for (Addr g = base & ~(kGranule - 1); g < end; g += 128) {
        cost.instrs(1);
        cost.memAccess(tags_.shadowAddr(g), true);
    }
}

void
BoundsCheck::checkAccess(const EventRecord& record, CostSink& cost)
{
    // Range test: two compares against the heap bounds. (The IR
    // expresses exactly this prologue as charge(2) + rangeExit(heap,
    // 1) — keep the two in lockstep.)
    cost.instrs(2);
    Addr addr = record.addr;
    if (addr < config_.heap_base ||
        addr >= config_.heap_base + config_.heap_bytes) {
        cost.instrs(1); // fall-through branch
        return;
    }
    tagProbe(record, cost);
}

template <typename Cost>
void
BoundsCheck::tagProbe(const EventRecord& record, Cost& cost)
{
    Addr addr = record.addr;
    // Shadow index computation + tag extract + compare + branch: the
    // whole check is one probe of the granule the address lands in —
    // constant cost, no straddle handling (that imprecision at granule
    // edges is the MTE trade).
    cost.instrs(5);
    cost.memAccess(tags_.shadowAddr(addr), false);

    const std::uint8_t* tag = tags_.find(addr);
    if (tag && *tag != 0) return;

    std::uint64_t granule = addr >> 4;
    if (config_.dedupe_reports && !reported_.insert(granule).second) {
        return;
    }
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "%s of untagged granule (freed or never allocated)",
                  record.type == EventType::kStore ? "write" : "read");
    report({FindingKind::kTagMismatch, record.pc, addr, record.tid,
            msg});
}

template <typename Cost>
void
BoundsCheck::allocImpl(const EventRecord& record, Cost& cost)
{
    // Block bookkeeping + tag-cycling arithmetic.
    cost.instrs(8);
    if (record.addr == 0) return; // failed allocation
    next_tag_ = static_cast<std::uint8_t>(next_tag_ % 15 + 1);
    live_[record.addr] = record.aux;
    live_bytes_ += record.aux;
    colourRange(record.addr, record.aux, next_tag_, cost);
}

void
BoundsCheck::onAlloc(const EventRecord& record, CostSink& cost)
{
    allocImpl(record, cost);
}

template <typename Cost>
void
BoundsCheck::freeImpl(const EventRecord& record, Cost& cost)
{
    cost.instrs(8);
    auto it = live_.find(record.addr);
    if (it == live_.end()) {
        // Free of an unknown block: nothing to retag. AddrCheck owns
        // double-free reporting; BoundsCheck stays a pure tag engine.
        return;
    }
    colourRange(record.addr, it->second, 0, cost);
    live_bytes_ -= it->second;
    live_.erase(it);
}

void
BoundsCheck::onFree(const EventRecord& record, CostSink& cost)
{
    freeImpl(record, cost);
}

} // namespace lba::lifeguards
