#pragma once
/**
 * @file
 * TaintCheck lifeguard (paper Section 3, after Newsome & Song): tracks the
 * propagation of untrusted inputs through *all* instructions — the data
 * flow the paper says distinguishes LBA from address-triggered schemes
 * like iWatcher — and reports when tainted data reaches a jump target.
 *
 * Metadata: one taint bit per application byte (a byte-mask per 8-byte
 * granule) plus a per-thread register-taint bitmask. kInput annotations
 * (SYS_READ) are the taint source; ALU/move/load/store handlers propagate;
 * indirect jumps/calls and returns check.
 */

#include <unordered_map>
#include <unordered_set>

#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** TaintCheck configuration. */
struct TaintCheckConfig
{
    /** Simulated base of the taint shadow table. */
    Addr shadow_base = lifeguard::kShadowBase + 0x800000000ull;
    /** Suppress duplicate tainted-jump reports per pc. */
    bool dedupe_reports = true;
};

/** See file comment. */
class TaintCheck : public lifeguard::Lifeguard
{
  public:
    explicit TaintCheck(const TaintCheckConfig& config = {});

    const char* name() const override { return "TaintCheck"; }

    /** Fused-tier opt-in: the IR mirror of the handler table. */
    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    /** True when register @p reg of thread @p tid is tainted (tests). */
    bool regTainted(ThreadId tid, RegIndex reg) const;

    /** True when any byte of [addr, addr+bytes) is tainted (tests). */
    bool memTainted(Addr addr, unsigned bytes) const;

  private:
    // Handler bodies, templated over the cost accumulator: every
    // TaintCheck handler touches register- or memory-taint state, so
    // the IR description is one kKernel per event type, sharing these
    // bodies with the table path (the constructor registers table
    // entry and IR kernel from the same lambda - the tiers cannot
    // diverge).
    template <typename Cost>
    void onLoadImm(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onMove(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onAlu(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onLoad(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onStore(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onIndirectTransfer(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onReturn(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onInput(const log::EventRecord& record, Cost& cost);
    template <typename Cost>
    void onAlloc(const log::EventRecord& record, Cost& cost);

    /** Tainted-jump check shared by the control-transfer handlers. */
    template <typename Cost>
    void checkJump(const log::EventRecord& record, RegIndex source_reg,
                   Cost& cost);

    /** Taint mask covering [addr, addr+bytes) (read path). */
    template <typename Cost>
    bool readMemTaint(Addr addr, unsigned bytes, Cost& cost);

    /** Set/clear taint over [addr, addr+bytes) (write path). */
    template <typename Cost>
    void writeMemTaint(Addr addr, unsigned bytes, bool tainted,
                       Cost& cost);

    /** Register-taint bit accessors (host-side state, no cost). */
    bool regBit(ThreadId tid, RegIndex reg) const;
    void setRegBit(ThreadId tid, RegIndex reg, bool tainted);

    TaintCheckConfig config_;
    /** Handler-IR description (built in the constructor). */
    lifeguard::ir::LifeguardIR ir_;
    /** Bit i of entry(g) set => byte g*8+i is tainted. */
    lifeguard::ShadowMemory<std::uint8_t, 8> taint_;
    /** Per-thread register taint bitmask (bit per register). */
    std::unordered_map<ThreadId, std::uint32_t> reg_taint_;
    /** pcs already reported (dedupe). */
    std::unordered_set<Addr> reported_;
};

} // namespace lba::lifeguards
