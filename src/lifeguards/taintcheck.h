#pragma once
/**
 * @file
 * TaintCheck lifeguard (paper Section 3, after Newsome & Song): tracks the
 * propagation of untrusted inputs through *all* instructions — the data
 * flow the paper says distinguishes LBA from address-triggered schemes
 * like iWatcher — and reports when tainted data reaches a jump target.
 *
 * Metadata: one taint bit per application byte (a byte-mask per 8-byte
 * granule) plus a per-thread register-taint bitmask. kInput annotations
 * (SYS_READ) are the taint source; ALU/move/load/store handlers propagate;
 * indirect jumps/calls and returns check.
 */

#include <unordered_map>
#include <unordered_set>

#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** TaintCheck configuration. */
struct TaintCheckConfig
{
    /** Simulated base of the taint shadow table. */
    Addr shadow_base = lifeguard::kShadowBase + 0x800000000ull;
    /** Suppress duplicate tainted-jump reports per pc. */
    bool dedupe_reports = true;
};

/** See file comment. */
class TaintCheck : public lifeguard::Lifeguard
{
  public:
    explicit TaintCheck(const TaintCheckConfig& config = {});

    const char* name() const override { return "TaintCheck"; }

    /** True when register @p reg of thread @p tid is tainted (tests). */
    bool regTainted(ThreadId tid, RegIndex reg) const;

    /** True when any byte of [addr, addr+bytes) is tainted (tests). */
    bool memTainted(Addr addr, unsigned bytes) const;

  private:
    // Handler-table entries (one per event type the lifeguard tracks).
    void onLoadImm(const log::EventRecord& record,
                   lifeguard::CostSink& cost);
    void onMove(const log::EventRecord& record,
                lifeguard::CostSink& cost);
    void onAlu(const log::EventRecord& record,
               lifeguard::CostSink& cost);
    void onLoad(const log::EventRecord& record,
                lifeguard::CostSink& cost);
    void onStore(const log::EventRecord& record,
                 lifeguard::CostSink& cost);
    void onIndirectTransfer(const log::EventRecord& record,
                            lifeguard::CostSink& cost);
    void onReturn(const log::EventRecord& record,
                  lifeguard::CostSink& cost);
    void onInput(const log::EventRecord& record,
                 lifeguard::CostSink& cost);
    void onAlloc(const log::EventRecord& record,
                 lifeguard::CostSink& cost);

    /** Tainted-jump check shared by the control-transfer handlers. */
    void checkJump(const log::EventRecord& record, RegIndex source_reg,
                   lifeguard::CostSink& cost);

    /** Taint mask covering [addr, addr+bytes) (read path). */
    bool readMemTaint(Addr addr, unsigned bytes,
                      lifeguard::CostSink& cost);

    /** Set/clear taint over [addr, addr+bytes) (write path). */
    void writeMemTaint(Addr addr, unsigned bytes, bool tainted,
                       lifeguard::CostSink& cost);

    /** Register taint bit accessors. */
    bool regBit(ThreadId tid, RegIndex reg) const;
    void setRegBit(ThreadId tid, RegIndex reg, bool tainted);

    TaintCheckConfig config_;
    /** Bit i of entry(g) set => byte g*8+i is tainted. */
    lifeguard::ShadowMemory<std::uint8_t, 8> taint_;
    /** Per-thread register taint bitmask (bit per register). */
    std::unordered_map<ThreadId, std::uint32_t> reg_taint_;
    /** pcs already reported (dedupe). */
    std::unordered_set<Addr> reported_;
};

} // namespace lba::lifeguards
