/**
 * @file
 * AddrCheck implementation.
 *
 * Handler cost model (charged via CostSink, per event):
 *   non-memory event      : no handler work (dispatch cost only)
 *   load/store, non-heap  : 3 instrs  (range check, fall through)
 *   load/store, heap      : 8 instrs + 1 shadow read (+1 more when the
 *                           access straddles a granule boundary)
 *   alloc/free            : ~10 instrs + 2 instrs and 1 shadow write per
 *                           8-byte granule of the block
 * These counts correspond to a tight hand-written handler: address range
 * test, shadow index computation, mask test, and conditional report.
 */

#include "lifeguards/addrcheck.h"

#include <cstdio>

namespace lba::lifeguards {

using lifeguard::CostSink;
using lifeguard::Finding;
using lifeguard::FindingKind;
using log::EventRecord;
using log::EventType;

AddrCheck::AddrCheck(const AddrCheckConfig& config)
    : config_(config), valid_(config.shadow_base)
{
    // The handler table (paper Section 2): every event type AddrCheck
    // does not register costs dispatch cycles only.
    onEvent<&AddrCheck::checkAccess>(EventType::kLoad);
    onEvent<&AddrCheck::checkAccess>(EventType::kStore);
    onEvent<&AddrCheck::onAlloc>(EventType::kAlloc);
    onEvent<&AddrCheck::onFree>(EventType::kFree);

    // The IR mirror of the table, for the fused dispatch tier. The
    // load/store prologue (2-instruction range test, 1-instruction
    // fall-through) is expressed as IR ops so the fused loop can skip
    // non-heap records without entering a kernel; the heap path and
    // the annotation handlers are shared-body kernels.
    auto access = [](lifeguard::Lifeguard& self,
                     const EventRecord& record, auto& cost) {
        static_cast<AddrCheck&>(self).heapAccess(record, cost);
    };
    for (EventType type : {EventType::kLoad, EventType::kStore}) {
        ir_.define(type)
            .charge(2)
            .rangeExit(config.heap_base, config.heap_bytes, 1)
            .kernel(access);
    }
    ir_.define(EventType::kAlloc)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<AddrCheck&>(self).allocImpl(record, cost);
        });
    ir_.define(EventType::kFree)
        .kernel([](lifeguard::Lifeguard& self, const EventRecord& record,
                   auto& cost) {
            static_cast<AddrCheck&>(self).freeImpl(record, cost);
        });
}

template <typename Cost>
void
AddrCheck::markRange(Addr base, std::uint64_t size, bool allocated,
                     Cost& cost)
{
    // Functional update: per-granule validity masks.
    Addr end = base + size;
    for (Addr g = base & ~7ull; g < end; g += 8) {
        std::uint8_t mask = 0;
        for (unsigned b = 0; b < 8; ++b) {
            Addr byte = g + b;
            if (byte >= base && byte < end) {
                mask |= static_cast<std::uint8_t>(1u << b);
            }
        }
        std::uint8_t& entry = valid_.entry(g);
        entry = allocated ? (entry | mask)
                          : static_cast<std::uint8_t>(entry & ~mask);
    }
    // Cost: a real handler memsets the shadow with 8-byte stores (one
    // store covers 8 granule bytes = 64 application bytes), not with a
    // store per granule.
    for (Addr g = base & ~7ull; g < end; g += 64) {
        cost.instrs(1);
        cost.memAccess(valid_.shadowAddr(g), true);
    }
}

void
AddrCheck::checkAccess(const EventRecord& record, CostSink& cost)
{
    // Range test: two compares against the heap bounds. (The IR
    // expresses exactly this prologue as charge(2) + rangeExit(heap,
    // 1) — keep the two in lockstep.)
    cost.instrs(2);
    Addr addr = record.addr;
    if (addr < config_.heap_base ||
        addr >= config_.heap_base + config_.heap_bytes) {
        cost.instrs(1); // fall-through branch
        return;
    }
    heapAccess(record, cost);
}

template <typename Cost>
void
AddrCheck::heapAccess(const EventRecord& record, Cost& cost)
{
    Addr addr = record.addr;
    unsigned bytes = static_cast<unsigned>(record.aux ? record.aux : 1);
    // Shadow index computation + mask formation + test + branch.
    cost.instrs(6);
    cost.memAccess(valid_.shadowAddr(addr), false);

    bool ok = true;
    for (unsigned b = 0; b < bytes; ++b) {
        Addr byte = addr + b;
        if (b > 0 && (byte & 7) == 0) {
            // Access crosses into the next granule: second shadow probe.
            cost.instrs(2);
            cost.memAccess(valid_.shadowAddr(byte), false);
        }
        const std::uint8_t* entry = valid_.find(byte);
        std::uint8_t mask = static_cast<std::uint8_t>(1u << (byte & 7));
        if (!entry || !(*entry & mask)) {
            ok = false;
        }
    }
    if (ok) return;

    std::uint64_t granule = addr >> 3;
    if (config_.dedupe_reports && !reported_.insert(granule).second) {
        return;
    }
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "%u-byte %s of unallocated heap memory", bytes,
                  record.type == EventType::kStore ? "write" : "read");
    report({FindingKind::kUnallocatedAccess, record.pc, addr, record.tid,
            msg});
}

template <typename Cost>
void
AddrCheck::allocImpl(const EventRecord& record, Cost& cost)
{
    cost.instrs(10);
    if (record.addr == 0) return; // failed allocation
    live_[record.addr] = record.aux;
    live_bytes_ += record.aux;
    markRange(record.addr, record.aux, true, cost);
    // Re-allocation of a previously reported granule is legitimate
    // again; forget dedupe state lazily (host-side only).
}

void
AddrCheck::onAlloc(const EventRecord& record, CostSink& cost)
{
    allocImpl(record, cost);
}

template <typename Cost>
void
AddrCheck::freeImpl(const EventRecord& record, Cost& cost)
{
    cost.instrs(10);
    auto it = live_.find(record.addr);
    if (it == live_.end()) {
        report({FindingKind::kDoubleFree, record.pc, record.addr,
                record.tid,
                "free() of address that is not a live block"});
        return;
    }
    markRange(record.addr, it->second, false, cost);
    live_bytes_ -= it->second;
    live_.erase(it);
}

void
AddrCheck::onFree(const EventRecord& record, CostSink& cost)
{
    freeImpl(record, cost);
}

void
AddrCheck::finish(CostSink& cost)
{
    // Leak scan: walk the live-block table.
    cost.instrs(5);
    for (const auto& [base, size] : live_) {
        cost.instrs(20);
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "leaked block of %llu bytes",
                      static_cast<unsigned long long>(size));
        report({FindingKind::kMemoryLeak, 0, base, 0, msg});
    }
}

} // namespace lba::lifeguards
