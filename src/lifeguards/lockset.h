#pragma once
/**
 * @file
 * LockSet lifeguard (paper Section 3, after Savage et al.'s Eraser):
 * detects possible data races in multithreaded programs by refining, for
 * every shared memory location, the set of locks consistently held when
 * it is accessed.
 *
 * State machine per 8-byte granule (the Eraser algorithm):
 *   Virgin -> Exclusive(first thread) -> Shared (second thread reads)
 *          -> SharedModified (second thread writes / write while Shared)
 * The candidate lockset C(v) is initialized at the first sharing
 * transition and intersected with the accessing thread's held-lock set on
 * every subsequent access; an empty C(v) in SharedModified state is a
 * potential race.
 *
 * Locksets are canonicalized in a LocksetTable so that intersection is
 * memoized and each set has a stable id (and a simulated table address
 * for cache timing).
 */

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** Canonical lockset storage with memoized intersection. */
class LocksetTable
{
  public:
    explicit LocksetTable(Addr table_base);

    /** Id of the empty lockset. */
    static constexpr std::uint32_t kEmpty = 0;

    /** Canonical id of a sorted, duplicate-free lock vector. */
    std::uint32_t idOf(const std::vector<Addr>& sorted_locks);

    /** Memoized intersection of two canonical sets. */
    std::uint32_t intersect(std::uint32_t a, std::uint32_t b);

    /** The locks in set @p id. */
    const std::vector<Addr>& locks(std::uint32_t id) const;

    /** Simulated address of the set's table entry (for cache timing). */
    Addr
    simAddr(std::uint32_t id) const
    {
        return table_base_ + static_cast<Addr>(id) * 16;
    }

    /** Number of distinct locksets interned. */
    std::size_t size() const { return sets_.size(); }

  private:
    Addr table_base_;
    std::vector<std::vector<Addr>> sets_;
    std::map<std::vector<Addr>, std::uint32_t> ids_;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
        intersect_memo_;
};

/** LockSet configuration. */
struct LockSetConfig
{
    /** Simulated base of the granule-state shadow table. */
    Addr shadow_base = lifeguard::kShadowBase + 0x1000000000ull;
    /** Simulated base of the lockset table. */
    Addr lockset_table_base = lifeguard::kShadowBase + 0x1800000000ull;
    /** Suppress duplicate race reports per granule. */
    bool dedupe_reports = true;
    /**
     * Only granules in this range participate (the shared-data segment);
     * 0 size = check everything. Restricting to the heap/globals avoids
     * per-thread stack noise, as Eraser does via its allocation hooks.
     */
    Addr check_base = 0;
    std::uint64_t check_bytes = 0;
};

/** See file comment. */
class LockSet : public lifeguard::Lifeguard
{
  public:
    explicit LockSet(const LockSetConfig& config = {});

    const char* name() const override { return "LockSet"; }

    /** Fused-tier opt-in: the IR mirror of the handler table. */
    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    /** Current lockset id of a thread (tests). */
    std::uint32_t threadLockset(ThreadId tid) const;

    /** Granule state values (exposed for tests). */
    enum State : std::uint8_t {
        kVirgin = 0,
        kExclusive = 1,
        kShared = 2,
        kSharedModified = 3,
    };

    /** State of the granule containing @p addr (tests). */
    State granuleState(Addr addr) const;

  private:
    /** Per-granule Eraser metadata (8 bytes; one shadow entry). */
    struct Granule
    {
        std::uint8_t state = kVirgin;
        ThreadId owner = 0;
        std::uint32_t lockset = LocksetTable::kEmpty;
    };

    /** Per-thread held-lock bookkeeping. */
    struct ThreadLocks
    {
        std::vector<Addr> held; // sorted
        std::uint32_t id = LocksetTable::kEmpty;
    };

    // Handler bodies, templated over the cost accumulator and shared
    // between the table path and the fused IR kernels (the
    // constructor registers both from the same lambdas). The optional
    // check-range filter of handleAccess is what the IR expresses as
    // a kRangeExit op, so the kernel body is the post-filter
    // accessImpl.

    /** Table-path load/store body: optional range filter + access. */
    template <typename Cost>
    void handleAccess(const log::EventRecord& record, bool is_write,
                      Cost& cost);

    /** The Eraser state machine proper (after the range filter). */
    template <typename Cost>
    void accessImpl(const log::EventRecord& record, bool is_write,
                    Cost& cost);

    template <typename Cost>
    void handleLock(const log::EventRecord& record, bool acquire,
                    Cost& cost);

    template <typename Cost>
    void allocImpl(const log::EventRecord& record, Cost& cost);

    LockSetConfig config_;
    /** Handler-IR description (built in the constructor). */
    lifeguard::ir::LifeguardIR ir_;
    LocksetTable table_;
    lifeguard::ShadowMemory<Granule, 8> granules_;
    std::unordered_map<ThreadId, ThreadLocks> thread_locks_;
    std::unordered_set<std::uint64_t> reported_;
};

} // namespace lba::lifeguards
