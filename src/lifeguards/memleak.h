#pragma once
/**
 * @file
 * MemLeak lifeguard: allocation-site tracking with reachability-decay
 * sweeps. Where AddrCheck answers "is this access legal?", MemLeak
 * answers "is this block still in use?": every live heap block carries
 * its allocation site and a last-touch epoch stamp; heap loads/stores
 * refresh the stamp, and at syscall boundaries a periodic decay sweep
 * walks the block table and reports blocks untouched for a
 * configurable number of epochs as FindingKind::kLeakSuspect (once per
 * block). Blocks still live at program end are definite
 * FindingKind::kMemoryLeak reports.
 *
 * Cost profile: the *opposite* of BoundsCheck. Long-lived shadow state
 * (a word-wide epoch stamp per 16-byte granule that is written on
 * every heap access and never discarded) plus periodic whole-table
 * sweeps make MemLeak's overhead grow with the live heap footprint and
 * the syscall rate — it deliberately stresses shadow-memory footprint
 * and flush-boundary costs in the dispatch engines.
 */

#include <map>

#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "lifeguard/shadow_memory.h"

namespace lba::lifeguards {

/** MemLeak configuration. */
struct MemLeakConfig
{
    /** Heap range to track. */
    Addr heap_base = 0x10000000;
    std::uint64_t heap_bytes = 64ull << 20;
    /** Simulated base of the epoch-stamp shadow (distinct per guard). */
    Addr shadow_base = lifeguard::kShadowBase + 0x2800000000ull;
    /** Syscalls per epoch-advancing decay sweep. */
    std::uint64_t sweep_period = 64;
    /** Epochs (syscalls) a block may go untouched before it is
     *  reported as a leak suspect. */
    std::uint64_t stale_epochs = 256;
};

/** See file comment. */
class MemLeak : public lifeguard::Lifeguard
{
  public:
    explicit MemLeak(const MemLeakConfig& config = {});

    const char* name() const override { return "MemLeak"; }

    void finish(lifeguard::CostSink& cost) override;

    /** Fused-tier opt-in: the IR mirror of the handler table. */
    const lifeguard::ir::LifeguardIR*
    handlerIR() const override
    {
        return &ir_;
    }

    /** Live (unfreed) blocks currently tracked (for tests). */
    std::size_t liveBlocks() const { return blocks_.size(); }

    /** Decay sweeps performed so far (for tests). */
    std::uint64_t sweeps() const { return sweeps_; }

  private:
    /** One tracked allocation. */
    struct Block
    {
        std::uint64_t size = 0;
        Addr alloc_pc = 0;
        ThreadId tid = 0;
        std::uint64_t last_epoch = 0;
        bool suspected = false;
    };

    // Handler bodies are written once, templated over the cost
    // accumulator, and instantiated for the virtual CostSink (table
    // path) and the fused ir::DirectCost/DeferredCost (IR kernels) —
    // which keeps the dispatch tiers cost-identical by construction.

    /** kLoad/kStore handler (table path: full body incl. range test). */
    void checkAccess(const log::EventRecord& record,
                     lifeguard::CostSink& cost);

    /** kSyscall handler: advance the epoch clock, maybe sweep. */
    void onSyscall(const log::EventRecord& record,
                   lifeguard::CostSink& cost);

    /** kAlloc handler: start tracking the block. */
    void onAlloc(const log::EventRecord& record,
                 lifeguard::CostSink& cost);

    /** kFree handler: stop tracking the block. */
    void onFree(const log::EventRecord& record,
                lifeguard::CostSink& cost);

    /** Heap-range load/store body: refresh the granule + block stamp. */
    template <typename Cost>
    void touch(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void tickImpl(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void allocImpl(const log::EventRecord& record, Cost& cost);

    template <typename Cost>
    void freeImpl(const log::EventRecord& record, Cost& cost);

    /** The tracked block containing @p addr, or nullptr. */
    Block* owningBlock(Addr addr);

    MemLeakConfig config_;
    /** Handler-IR description (built in the constructor, mirrors the
     *  registrations there). */
    lifeguard::ir::LifeguardIR ir_;
    /** Last-touch epoch stamp per 16-byte granule (long-lived; never
     *  reclaimed while the guard runs — the footprint stressor). */
    lifeguard::ShadowMemory<std::uint32_t, 16> stamps_;
    /** Tracked blocks, base -> Block. std::map so sweep order (and
     *  therefore finding order) is deterministic. */
    std::map<Addr, Block> blocks_;
    /** Epoch clock: one tick per syscall record seen. */
    std::uint64_t epoch_ = 0;
    std::uint64_t sweeps_ = 0;
};

} // namespace lba::lifeguards
