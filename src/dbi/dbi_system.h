#pragma once
/**
 * @file
 * The software-only baseline: a Valgrind-style dynamic binary
 * instrumentation (DBI) platform.
 *
 * The paper attributes DBI's overhead to two sources (Section 1):
 *  1. the lifeguard and the application share one core, competing for
 *     cycles, registers and L1 cache; and
 *  2. the tool must recreate hardware state the architecture does not
 *     expose (instruction pointers, effective addresses, ...).
 *
 * This model charges, per application instruction on the *application
 * core*:
 *   - the application's own cost (base CPI + cache penalties),
 *   - a translation/dispatch overhead (code-cache execution),
 *   - extra instruction fetches into a translated-code region sized by a
 *     code-expansion factor (models I-cache pressure from instrumented
 *     code),
 *   - state-reconstruction overhead for memory and control instructions,
 *   - the lifeguard handler, with its instruction count scaled by a
 *     factor (inline instrumentation cannot use the dispatch engine's
 *     register injection) and its metadata accesses going through the
 *     SAME L1/L2 as the application.
 *
 * The same Lifeguard instance as on LBA consumes the same event records,
 * so findings are platform-independent; only the cost accounting differs.
 * See docs/ARCHITECTURE.md ("The DBI baseline").
 */

#include <memory>

#include "lifeguard/lifeguard.h"
#include "log/capture.h"
#include "mem/hierarchy.h"
#include "sim/process.h"

namespace lba::dbi {

/** DBI overhead model parameters (see file comment). */
struct DbiConfig
{
    /** Core index the instrumented program runs on. */
    unsigned core = 0;
    /** Cycles of translation/dispatch overhead per instruction. */
    Cycles base_overhead = 8;
    /** Extra cycles to reconstruct effective addresses per memory op. */
    Cycles mem_overhead = 8;
    /** Extra cycles per control transfer (code-cache target lookup). */
    Cycles ctrl_overhead = 12;
    /** Handler instruction multiplier (no hardware register injection). */
    std::uint32_t handler_instr_factor = 7;
    /** Translated code is this many times larger than the original. */
    unsigned code_expansion = 4;
    /** Simulated base of the translation code cache. */
    Addr code_cache_base = 0x7000000000ull;
};

/** Accounting for one DBI run. */
struct DbiStats
{
    std::uint64_t app_instructions = 0;
    Cycles total_cycles = 0;
    Cycles app_cycles = 0;      ///< the program's own work
    Cycles overhead_cycles = 0; ///< translation + state reconstruction
    Cycles handler_cycles = 0;  ///< lifeguard handler execution
};

/**
 * Observer that executes the lifeguard inline with the application.
 */
class DbiSystem : public sim::RetireObserver
{
  public:
    /**
     * @param lifeguard Lifeguard to run (shared with no one).
     * @param hierarchy Cache hierarchy; only config.core is used.
     * @param config    Overhead model parameters.
     */
    DbiSystem(lifeguard::Lifeguard& lifeguard,
              mem::CacheHierarchy& hierarchy,
              const DbiConfig& config = {});

    void onRetire(const sim::Retired& retired) override;
    void onOsEvent(const sim::OsEvent& event) override;

    /** Run the lifeguard's end-of-program hook (charges cycles). */
    void finish();

    const DbiStats& stats() const { return stats_; }
    lifeguard::Lifeguard& lifeguard() { return lifeguard_; }

  private:
    /** CostSink charging the application core, with instr scaling. */
    class Sink : public lifeguard::CostSink
    {
      public:
        Sink(mem::CacheHierarchy& hierarchy, const DbiConfig& config)
            : hierarchy_(hierarchy), config_(config)
        {
        }

        void
        instrs(std::uint32_t count) override
        {
            cycles_ += static_cast<Cycles>(count) *
                       config_.handler_instr_factor;
        }

        void
        memAccess(Addr addr, bool is_write) override
        {
            cycles_ += 1 + hierarchy_.dataAccess(config_.core, addr,
                                                 is_write);
        }

        Cycles
        take()
        {
            Cycles c = cycles_;
            cycles_ = 0;
            return c;
        }

      private:
        mem::CacheHierarchy& hierarchy_;
        const DbiConfig& config_;
        Cycles cycles_ = 0;
    };

    lifeguard::Lifeguard& lifeguard_;
    mem::CacheHierarchy& hierarchy_;
    DbiConfig config_;
    Sink sink_;
    DbiStats stats_;
};

} // namespace lba::dbi
