/**
 * @file
 * DBI baseline implementation.
 */

#include "dbi/dbi_system.h"

namespace lba::dbi {

DbiSystem::DbiSystem(lifeguard::Lifeguard& lifeguard,
                     mem::CacheHierarchy& hierarchy,
                     const DbiConfig& config)
    : lifeguard_(lifeguard),
      hierarchy_(hierarchy),
      config_(config),
      sink_(hierarchy, config_)
{
}

void
DbiSystem::onRetire(const sim::Retired& retired)
{
    ++stats_.app_instructions;

    // 1. The application's own work.
    Cycles app = 1 + hierarchy_.instrFetch(config_.core, retired.pc);
    if (retired.mem_bytes > 0) {
        app += hierarchy_.dataAccess(config_.core, retired.mem_addr,
                                     retired.mem_is_write);
    }
    stats_.app_cycles += app;

    // 2. Translation/dispatch overhead + translated-code I-fetch.
    Cycles overhead = config_.base_overhead;
    Addr translated = config_.code_cache_base +
                      (retired.pc - sim::kCodeBase) *
                          config_.code_expansion;
    overhead += hierarchy_.instrFetch(config_.core, translated);
    if (retired.mem_bytes > 0) overhead += config_.mem_overhead;
    if (isa::isControl(retired.instr.op)) {
        overhead += config_.ctrl_overhead;
    }
    stats_.overhead_cycles += overhead;

    // 3. The lifeguard handler, inline on the same core.
    lifeguard_.handleEvent(log::CaptureUnit::makeRecord(retired), sink_);
    Cycles handler = sink_.take();
    stats_.handler_cycles += handler;

    stats_.total_cycles += app + overhead + handler;
}

void
DbiSystem::onOsEvent(const sim::OsEvent& event)
{
    lifeguard_.handleEvent(log::CaptureUnit::makeRecord(event), sink_);
    Cycles handler = sink_.take();
    stats_.handler_cycles += handler;
    stats_.total_cycles += handler;
}

void
DbiSystem::finish()
{
    lifeguard_.finish(sink_);
    Cycles handler = sink_.take();
    stats_.handler_cycles += handler;
    stats_.total_cycles += handler;
}

} // namespace lba::dbi
