#pragma once
/**
 * @file
 * Paged shadow memory for lifeguard metadata.
 *
 * Lifeguards keep per-address metadata (allocation bits, taint bits,
 * Eraser granule state). Functionally the metadata lives in host pages;
 * for *timing*, every entry has a deterministic simulated address
 * (shadowAddr) that the platform routes through the consuming core's
 * caches, so metadata locality behaves like the real lifeguard's table
 * walks.
 *
 * @tparam Entry        Metadata type per granule (trivially copyable).
 * @tparam GranuleBytes Application bytes covered by one entry.
 */

#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace lba::lifeguard {

/** Base of the simulated shadow region (outside application space). */
inline constexpr Addr kShadowBase = 0x4000000000ull;

template <typename Entry, unsigned GranuleBytes>
class ShadowMemory
{
    static_assert(GranuleBytes > 0 && (GranuleBytes & (GranuleBytes - 1)) == 0,
                  "granule must be a power of two");

  public:
    /** Entries per host page. */
    static constexpr std::size_t kPageEntries = 4096;

    /**
     * @param region_base Simulated base address of this shadow table
     *                    (distinct per lifeguard; see kShadowBase).
     */
    explicit ShadowMemory(Addr region_base = kShadowBase)
        : region_base_(region_base)
    {
    }

    /** Metadata entry covering application address @p app_addr. */
    Entry&
    entry(Addr app_addr)
    {
        std::uint64_t index = granuleIndex(app_addr);
        std::uint64_t page = index / kPageEntries;
        if (page == cached_page_) {
            return cached_data_[index % kPageEntries];
        }
        auto [it, inserted] = pages_.try_emplace(page);
        if (inserted) {
            // make_unique of an array value-initializes every element;
            // no extra clearing pass on the metadata hot path.
            it->second = std::make_unique<Entry[]>(kPageEntries);
        }
        cached_page_ = page;
        cached_data_ = it->second.get();
        return it->second[index % kPageEntries];
    }

    /** Read-only lookup; returns nullptr for untouched granules. */
    const Entry*
    find(Addr app_addr) const
    {
        std::uint64_t index = granuleIndex(app_addr);
        std::uint64_t page = index / kPageEntries;
        if (page == cached_page_) {
            return &cached_data_[index % kPageEntries];
        }
        auto it = pages_.find(page);
        if (it == pages_.end()) return nullptr;
        cached_page_ = page;
        cached_data_ = it->second.get();
        return &it->second[index % kPageEntries];
    }

    /**
     * Simulated address of the entry for @p app_addr, for cache timing.
     */
    Addr
    shadowAddr(Addr app_addr) const
    {
        return region_base_ + granuleIndex(app_addr) * sizeof(Entry);
    }

    /** Number of granules per entry, in application bytes. */
    static constexpr unsigned granuleBytes() { return GranuleBytes; }

    /** Number of host pages materialized. */
    std::size_t numPages() const { return pages_.size(); }

  private:
    static std::uint64_t
    granuleIndex(Addr app_addr)
    {
        return app_addr / GranuleBytes;
    }

    Addr region_base_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry[]>> pages_;
    /** Last-page memo: shadow accesses are highly local, so most
     *  lookups skip the hash table entirely. Page arrays never move
     *  once materialized (unique_ptr), so the memo cannot dangle. */
    mutable std::uint64_t cached_page_ = ~0ull;
    mutable Entry* cached_data_ = nullptr;
};

} // namespace lba::lifeguard
