/**
 * @file
 * Lifeguard batch-compiler implementation (lowering only; the
 * interpreter is the header template so it specializes per cost
 * flavour).
 */

#include "lifeguard/compiler.h"

#include "common/assert.h"

namespace lba::lifeguard {

CompiledDispatch
compileHandlers(const Lifeguard& lifeguard, const ir::LifeguardIR& ir)
{
    LBA_ASSERT(lifeguard.usesHandlerTable(),
               "IR descriptions require the handler-table style; a "
               "legacy handleEvent() override has no table to mirror");
    CompiledDispatch compiled;
    const auto& table = lifeguard.handlers();
    for (std::size_t t = 0; t < table.size(); ++t) {
        const ir::IrProgram* program =
            ir.program(static_cast<log::EventType>(t));
        CompiledHandler& handler = compiled.handlers[t];
        if (!program) {
            // The description must cover exactly the registered table:
            // a registered handler the IR is silent about would make
            // the fused tier skip work the other tiers perform.
            LBA_ASSERT(table[t] == nullptr,
                       "registered handler without an IR description");
            handler.kind = CompiledHandler::Kind::kSkip;
            continue;
        }
        LBA_ASSERT(table[t] != nullptr,
                   "IR description for an unregistered event type");
        // Classify: a pure-kCharge program is a constant cost.
        bool pure_charge = true;
        std::uint32_t cycles = 0;
        for (const ir::IrInst& inst : program->insts) {
            if (inst.op != ir::IrOp::kCharge) {
                pure_charge = false;
                break;
            }
            cycles += inst.cycles;
        }
        if (pure_charge) {
            handler.kind = CompiledHandler::Kind::kConst;
            handler.const_cycles = cycles;
        } else {
            handler.kind = CompiledHandler::Kind::kProgram;
            handler.program = program;
            compiled.all_const = false;
        }
    }
    return compiled;
}

} // namespace lba::lifeguard
