/**
 * @file
 * Dispatch engine implementation.
 */

#include "lifeguard/dispatch.h"

namespace lba::lifeguard {

DispatchEngine::DispatchEngine(Lifeguard& lifeguard,
                               mem::CacheHierarchy& hierarchy,
                               const DispatchConfig& config)
    : lifeguard_(lifeguard),
      config_(config),
      sink_(hierarchy, config.core)
{
}

Cycles
DispatchEngine::consume(const log::EventRecord& record)
{
    lifeguard_.handleEvent(record, sink_);
    Cycles cycles = config_.dispatch_cycles + sink_.take();

    ++stats_.records;
    stats_.total_cycles += cycles;
    auto type = static_cast<std::size_t>(record.type);
    ++stats_.records_by_type[type];
    stats_.cycles_by_type[type] += cycles;
    return cycles;
}

Cycles
DispatchEngine::finish()
{
    lifeguard_.finish(sink_);
    Cycles cycles = sink_.take();
    stats_.total_cycles += cycles;
    return cycles;
}

} // namespace lba::lifeguard
