/**
 * @file
 * Dispatch engine implementation.
 */

#include "lifeguard/dispatch.h"

namespace lba::lifeguard {

namespace {

/** Resolved slot for a legacy lifeguard: the virtual fallback. */
void
virtualHandler(Lifeguard& self, const log::EventRecord& record,
               CostSink& cost)
{
    self.handleEvent(record, cost);
}

/** Resolved slot for an unregistered type on a table lifeguard. */
void
ignoreHandler(Lifeguard&, const log::EventRecord&, CostSink&)
{
}

} // namespace

DispatchEngine::DispatchEngine(Lifeguard& lifeguard,
                               mem::CacheHierarchy& hierarchy,
                               const DispatchConfig& config)
    : lifeguard_(lifeguard),
      config_(config),
      sink_(hierarchy, config.core)
{
    // Late registration would diverge from this snapshot (and the
    // batched path from the per-record path): freeze the table.
    lifeguard.sealHandlerTable();
    const auto& table = lifeguard.handlers();
    for (std::size_t t = 0; t < table.size(); ++t) {
        if (table[t]) {
            resolved_[t] = table[t];
        } else {
            resolved_[t] = lifeguard.usesHandlerTable() ? &ignoreHandler
                                                        : &virtualHandler;
        }
    }
}

Cycles
DispatchEngine::consumeTable(const log::EventRecord& record)
{
    return dispatchOne(record);
}

Cycles
DispatchEngine::consume(const log::EventRecord& record)
{
    lifeguard_.handleEvent(record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::dispatchOne(const log::EventRecord& record)
{
    Lifeguard::Handler handler =
        resolved_[static_cast<std::size_t>(record.type)];
    if (handler == &ignoreHandler) {
        // Unregistered type: dispatch cost only, no handler call,
        // nothing in the sink — the hardware's "handler is just nlba"
        // case, and exactly what consumeTable() charges.
        return account(record, config_.dispatch_cycles);
    }
    handler(lifeguard_, record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::consumeBatch(const log::EventRecord* records,
                             std::size_t count, Cycles* costs)
{
    ++stats_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Cycles cycles = dispatchOne(records[i]);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

Cycles
DispatchEngine::consumeBatch(
    std::span<const log::LogBuffer::Entry> entries, Cycles* costs)
{
    ++stats_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Cycles cycles = dispatchOne(entries[i].record);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

Cycles
DispatchEngine::finish()
{
    lifeguard_.finish(sink_);
    Cycles cycles = sink_.take();
    stats_.total_cycles += cycles;
    return cycles;
}

} // namespace lba::lifeguard
