/**
 * @file
 * Dispatch engine implementation.
 */

#include "lifeguard/dispatch.h"

namespace lba::lifeguard {

namespace {

/** Resolved slot for a legacy lifeguard: the virtual fallback. */
void
virtualHandler(Lifeguard& self, const log::EventRecord& record,
               CostSink& cost)
{
    self.handleEvent(record, cost);
}

/** Resolved slot for an unregistered type on a table lifeguard. */
void
ignoreHandler(Lifeguard&, const log::EventRecord&, CostSink&)
{
}

} // namespace

DispatchEngine::DispatchEngine(Lifeguard& lifeguard,
                               mem::CacheHierarchy& hierarchy,
                               const DispatchConfig& config)
    : lifeguard_(lifeguard),
      config_(config),
      sink_(hierarchy, config.core)
{
    // Late registration would diverge from this snapshot (and the
    // batched path from the per-record path): freeze the table.
    lifeguard.sealHandlerTable();
    const auto& table = lifeguard.handlers();
    for (std::size_t t = 0; t < table.size(); ++t) {
        if (table[t]) {
            resolved_[t] = table[t];
        } else {
            resolved_[t] = lifeguard.usesHandlerTable() ? &ignoreHandler
                                                        : &virtualHandler;
        }
    }
}

Cycles
DispatchEngine::consumeTable(const log::EventRecord& record)
{
    return dispatchOne(record);
}

Cycles
DispatchEngine::consume(const log::EventRecord& record)
{
    lifeguard_.handleEvent(record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::dispatchOne(const log::EventRecord& record)
{
    Lifeguard::Handler handler =
        resolved_[static_cast<std::size_t>(record.type)];
    if (handler == &ignoreHandler) {
        // Unregistered type: dispatch cost only, no handler call,
        // nothing in the sink — the hardware's "handler is just nlba"
        // case, and exactly what consumeTable() charges.
        return account(record, config_.dispatch_cycles);
    }
    handler(lifeguard_, record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::consumeBatch(const log::EventRecord* records,
                             std::size_t count, Cycles* costs)
{
    ++functional_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Cycles cycles = dispatchOne(records[i]);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

Cycles
DispatchEngine::consumeBatch(
    std::span<const log::LogBuffer::Entry> entries, Cycles* costs)
{
    ++functional_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Cycles cycles = dispatchOne(entries[i].record);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

namespace {

/** CostSink capturing handler costs into a DeferredBatch (threaded
 *  phase 1) instead of charging the hierarchy. */
class RecordingSink : public CostSink
{
  public:
    RecordingSink(DeferredBatch& batch, DeferredBatch::PerRecord& record)
        : batch_(batch), record_(record)
    {
    }

    void instrs(std::uint32_t count) override
    {
        record_.instr_cycles += count;
    }

    void
    memAccess(Addr addr, bool is_write) override
    {
        batch_.ops.push_back({addr, is_write});
        ++record_.num_ops;
    }

  private:
    DeferredBatch& batch_;
    DeferredBatch::PerRecord& record_;
};

} // namespace

void
DispatchEngine::consumeBatchDeferred(const log::EventRecord* records,
                                     std::size_t count,
                                     DeferredBatch& out)
{
    ++functional_.batches;
    out.clear();
    out.records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const log::EventRecord& record = records[i];
        DeferredBatch::PerRecord per;
        per.first_op = static_cast<std::uint32_t>(out.ops.size());
        Lifeguard::Handler handler =
            resolved_[static_cast<std::size_t>(record.type)];
        if (handler != &ignoreHandler) {
            RecordingSink sink(out, per);
            handler(lifeguard_, record, sink);
        }
        out.records.push_back(per);
        // Functional half of account(): the record counters. The cycle
        // counters are folded in by replayDeferred() on the
        // coordinating thread, once the costs exist — splitting the
        // two halves across the flush barrier is what keeps the stats
        // struct race-free under threaded execution.
        ++functional_.records;
        ++functional_
              .records_by_type[static_cast<std::size_t>(record.type)];
    }
}

Cycles
DispatchEngine::replayDeferred(const log::EventRecord& record,
                               const DeferredBatch& batch, std::size_t i)
{
    const DeferredBatch::PerRecord& per = batch.records[i];
    Cycles cycles = config_.dispatch_cycles + per.instr_cycles;
    // Same arithmetic as Sink: each metadata access costs its own
    // cycle plus the hierarchy penalty, charged in execution order so
    // the shared-L2 state evolves exactly as on the serial path.
    for (std::uint32_t op = 0; op < per.num_ops; ++op) {
        const DeferredBatch::MemOp& mem = batch.ops[per.first_op + op];
        sink_.memAccess(mem.addr, mem.is_write);
    }
    cycles += sink_.take();
    timing_.total_cycles += cycles;
    timing_.cycles_by_type[static_cast<std::size_t>(record.type)] +=
        cycles;
    return cycles;
}

Cycles
DispatchEngine::finish()
{
    lifeguard_.finish(sink_);
    Cycles cycles = sink_.take();
    timing_.total_cycles += cycles;
    return cycles;
}

} // namespace lba::lifeguard
