/**
 * @file
 * Dispatch engine implementation.
 */

#include "lifeguard/dispatch.h"

namespace lba::lifeguard {

namespace {

/** Resolved slot for a legacy lifeguard: the virtual fallback. */
void
virtualHandler(Lifeguard& self, const log::EventRecord& record,
               CostSink& cost)
{
    self.handleEvent(record, cost);
}

/** Resolved slot for an unregistered type on a table lifeguard. */
void
ignoreHandler(Lifeguard&, const log::EventRecord&, CostSink&)
{
}

} // namespace

DispatchEngine::DispatchEngine(Lifeguard& lifeguard,
                               mem::CacheHierarchy& hierarchy,
                               const DispatchConfig& config)
    : lifeguard_(lifeguard),
      config_(config),
      hierarchy_(hierarchy),
      sink_(hierarchy, config.core)
{
    // Engines are built on the thread that drives the run — the
    // coordinator by construction, before any worker exists (the same
    // claim PipelineTimer's constructor makes). Assuming the role here
    // lets construction-time work carry coordinator-only annotations.
    threading::assumeCoordinatorRole();
    // Late registration would diverge from this snapshot (and the
    // batched path from the per-record path): freeze the table.
    lifeguard.sealHandlerTable();
    const auto& table = lifeguard.handlers();
    for (std::size_t t = 0; t < table.size(); ++t) {
        if (table[t]) {
            resolved_[t] = table[t];
        } else {
            resolved_[t] = lifeguard.usesHandlerTable() ? &ignoreHandler
                                                        : &virtualHandler;
        }
    }
    // Fused tier: lower the lifeguard's IR description, when it has
    // one, into the specialized drain table (coordinator-only step).
    if (const ir::LifeguardIR* ir = lifeguard.handlerIR()) {
        compiled_ = compileHandlers(lifeguard, *ir);
        fused_ = true;
    }
}

Cycles
DispatchEngine::consumeTable(const log::EventRecord& record)
{
    return dispatchOne(record);
}

Cycles
DispatchEngine::consume(const log::EventRecord& record)
{
    lifeguard_.handleEvent(record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::dispatchOne(const log::EventRecord& record)
{
    Lifeguard::Handler handler =
        resolved_[static_cast<std::size_t>(record.type)];
    if (handler == &ignoreHandler) {
        // Unregistered type: dispatch cost only, no handler call,
        // nothing in the sink — the hardware's "handler is just nlba"
        // case, and exactly what consumeTable() charges.
        return account(record, config_.dispatch_cycles);
    }
    handler(lifeguard_, record, sink_);
    return account(record, config_.dispatch_cycles + sink_.take());
}

Cycles
DispatchEngine::consumeBatch(const log::EventRecord* records,
                             std::size_t count, Cycles* costs)
{
    ++functional_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        Cycles cycles = dispatchOne(records[i]);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

Cycles
DispatchEngine::consumeBatch(
    std::span<const log::LogBuffer::Entry> entries, Cycles* costs)
{
    ++functional_.batches;
    Cycles total = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Cycles cycles = dispatchOne(entries[i].record);
        if (costs) costs[i] = cycles;
        total += cycles;
    }
    return total;
}

template <typename RecordAt>
Cycles
DispatchEngine::fusedDrain(std::size_t count, RecordAt at, Cycles* costs)
{
    Cycles total = 0;
    if (compiled_.all_const) {
        // Every type is kSkip/kConst: the whole batch drains through
        // one tight loop — per record, the cost is a table lookup and
        // the stat updates, with no call of any kind. This is the bulk
        // fast path the micro_dispatch >= 2x claim measures.
        for (std::size_t i = 0; i < count; ++i) {
            const auto t = static_cast<std::size_t>(at(i).type);
            const Cycles cycles = config_.dispatch_cycles +
                                  compiled_.handlers[t].const_cycles;
            if (costs) costs[i] = cycles;
            ++functional_.records_by_type[t];
            timing_.cycles_by_type[t] += cycles;
            total += cycles;
        }
        functional_.records += count;
        timing_.total_cycles += total;
        return total;
    }
    std::size_t i = 0;
    while (i < count) {
        // Maximal same-event-type run [i, j).
        const log::EventType type = at(i).type;
        std::size_t j = i + 1;
        while (j < count && at(j).type == type) ++j;
        const auto t = static_cast<std::size_t>(type);
        const CompiledHandler& handler = compiled_.handlers[t];
        if (handler.kind != CompiledHandler::Kind::kProgram) {
            // kSkip/kConst run: constant per-record cost, charged in
            // bulk — arithmetic identical to j-i account() calls.
            const std::size_t n = j - i;
            const Cycles per =
                config_.dispatch_cycles + handler.const_cycles;
            if (costs) {
                for (std::size_t k = i; k < j; ++k) costs[k] = per;
            }
            const Cycles run = per * static_cast<Cycles>(n);
            functional_.records += n;
            functional_.records_by_type[t] += n;
            timing_.total_cycles += run;
            timing_.cycles_by_type[t] += run;
            total += run;
        } else {
            ir::DirectCost cost(hierarchy_, config_.core);
            for (std::size_t k = i; k < j; ++k) {
                const log::EventRecord& record = at(k);
                runIrProgram(*handler.program, lifeguard_, record, cost);
                const Cycles cycles =
                    config_.dispatch_cycles + cost.take();
                if (costs) costs[k] = cycles;
                account(record, cycles);
                total += cycles;
            }
        }
        i = j;
    }
    return total;
}

Cycles
DispatchEngine::consumeBatchFused(const log::EventRecord* records,
                                  std::size_t count, Cycles* costs)
{
    // No IR description: the batched tier IS the fused tier's
    // behaviour (and its cost), so fall through to it.
    if (!fused_) return consumeBatch(records, count, costs);
    ++functional_.batches;
    return fusedDrain(
        count,
        [records](std::size_t i) -> const log::EventRecord& {
            return records[i];
        },
        costs);
}

Cycles
DispatchEngine::consumeBatchFused(
    std::span<const log::LogBuffer::Entry> entries, Cycles* costs)
{
    if (!fused_) return consumeBatch(entries, costs);
    ++functional_.batches;
    return fusedDrain(
        entries.size(),
        [entries](std::size_t i) -> const log::EventRecord& {
            return entries[i].record;
        },
        costs);
}

namespace {

/** CostSink capturing handler costs into a DeferredBatch (threaded
 *  phase 1) instead of charging the hierarchy. */
class RecordingSink : public CostSink
{
  public:
    RecordingSink(DeferredBatch& batch, DeferredBatch::PerRecord& record)
        : batch_(batch), record_(record)
    {
    }

    void instrs(std::uint32_t count) override
    {
        record_.instr_cycles += count;
    }

    void
    memAccess(Addr addr, bool is_write) override
    {
        batch_.ops.push_back({addr, is_write});
        ++record_.num_ops;
    }

  private:
    DeferredBatch& batch_;
    DeferredBatch::PerRecord& record_;
};

} // namespace

void
DispatchEngine::consumeBatchDeferred(const log::EventRecord* records,
                                     std::size_t count,
                                     DeferredBatch& out)
{
    ++functional_.batches;
    out.clear();
    out.records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const log::EventRecord& record = records[i];
        DeferredBatch::PerRecord per;
        per.first_op = static_cast<std::uint32_t>(out.ops.size());
        Lifeguard::Handler handler =
            resolved_[static_cast<std::size_t>(record.type)];
        if (handler != &ignoreHandler) {
            RecordingSink sink(out, per);
            handler(lifeguard_, record, sink);
        }
        out.records.push_back(per);
        // Functional half of account(): the record counters. The cycle
        // counters are folded in by replayDeferred() on the
        // coordinating thread, once the costs exist — splitting the
        // two halves across the flush barrier is what keeps the stats
        // struct race-free under threaded execution.
        ++functional_.records;
        ++functional_
              .records_by_type[static_cast<std::size_t>(record.type)];
    }
}

void
DispatchEngine::consumeBatchFusedDeferred(
    const log::EventRecord* records, std::size_t count,
    DeferredBatch& out)
{
    if (!fused_) {
        consumeBatchDeferred(records, count, out);
        return;
    }
    ++functional_.batches;
    out.clear();
    out.records.reserve(count);
    ir::DeferredCost cost(out.ops);
    std::size_t i = 0;
    while (i < count) {
        const log::EventType type = records[i].type;
        std::size_t j = i + 1;
        while (j < count && records[j].type == type) ++j;
        const auto t = static_cast<std::size_t>(type);
        const CompiledHandler& handler = compiled_.handlers[t];
        const std::size_t n = j - i;
        if (handler.kind != CompiledHandler::Kind::kProgram) {
            // kSkip/kConst run: no metadata accesses, constant
            // instruction cost (0 for kSkip) — replayDeferred() adds
            // the dispatch cycles, exactly as for the batched tier.
            DeferredBatch::PerRecord per;
            per.instr_cycles = handler.const_cycles;
            per.first_op = static_cast<std::uint32_t>(out.ops.size());
            for (std::size_t k = 0; k < n; ++k) {
                out.records.push_back(per);
            }
        } else {
            for (std::size_t k = i; k < j; ++k) {
                DeferredBatch::PerRecord per;
                per.first_op =
                    static_cast<std::uint32_t>(out.ops.size());
                runIrProgram(*handler.program, lifeguard_, records[k],
                             cost);
                per.instr_cycles = cost.takeInstrs();
                per.num_ops = cost.takeOps();
                out.records.push_back(per);
            }
        }
        // Functional half of account(), in bulk (see
        // consumeBatchDeferred for why only this half advances here).
        functional_.records += n;
        functional_.records_by_type[t] += n;
        i = j;
    }
}

Cycles
DispatchEngine::replayDeferred(const log::EventRecord& record,
                               const DeferredBatch& batch, std::size_t i)
{
    const DeferredBatch::PerRecord& per = batch.records[i];
    Cycles cycles = config_.dispatch_cycles + per.instr_cycles;
    // Same arithmetic as Sink: each metadata access costs its own
    // cycle plus the hierarchy penalty, charged in execution order so
    // the shared-L2 state evolves exactly as on the serial path.
    for (std::uint32_t op = 0; op < per.num_ops; ++op) {
        const DeferredBatch::MemOp& mem = batch.ops[per.first_op + op];
        sink_.memAccess(mem.addr, mem.is_write);
    }
    cycles += sink_.take();
    timing_.total_cycles += cycles;
    timing_.cycles_by_type[static_cast<std::size_t>(record.type)] +=
        cycles;
    return cycles;
}

Cycles
DispatchEngine::finish()
{
    lifeguard_.finish(sink_);
    Cycles cycles = sink_.take();
    timing_.total_cycles += cycles;
    return cycles;
}

} // namespace lba::lifeguard
