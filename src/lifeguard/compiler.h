#pragma once
/**
 * @file
 * The lifeguard batch compiler (fused dispatch, tier three).
 *
 * compileHandlers() lowers a lifeguard's IR description (ir.h) into a
 * per-event-type CompiledDispatch table the fused drain loops execute
 * directly. Lowering classifies every program:
 *
 *   kSkip     no handler registered — dispatch cost only;
 *   kConst    pure-kCharge program — the handler cost is a compile-time
 *             constant and touches neither lifeguard state nor the
 *             cache hierarchy, so whole same-type runs (or, when every
 *             type is kSkip/kConst, whole batches) are drained with no
 *             per-record call at all;
 *   kProgram  anything else — run through runIrProgram(), the
 *             computed-goto interpreter below, still free of virtual
 *             calls and per-record table lookups.
 *
 * Compilation happens once, at dispatch-engine construction, on the
 * coordinating thread — the annotation makes that a compile-time rule
 * (tests/static_analysis/violation_worker_calls_compiler.cc proves the
 * gate rejects a worker calling it), and tools/lba_lint.py keeps the
 * annotation itself from being dropped. The drain loops that *execute*
 * compiled programs carry the same capability requirements as the
 * batched tier they replace (see DispatchEngine::consumeBatchFused and
 * consumeBatchFusedDeferred in dispatch.h).
 */

#include <array>
#include <cstdint>

#include "common/thread_annotations.h"
#include "lifeguard/ir.h"
#include "lifeguard/lifeguard.h"
#include "log/event.h"

namespace lba::lifeguard {

/** One event type's lowered handler (see file comment). */
struct CompiledHandler
{
    enum class Kind : std::uint8_t
    {
        kSkip = 0,
        kConst = 1,
        kProgram = 2,
    };

    Kind kind = Kind::kSkip;
    /** kConst: handler instruction cycles per record (0 for kSkip). */
    std::uint32_t const_cycles = 0;
    /** kProgram: the program to interpret (owned by the lifeguard's
     *  LifeguardIR, which outlives the engine). */
    const ir::IrProgram* program = nullptr;
};

/** A lifeguard's fully lowered handler set. */
struct CompiledDispatch
{
    std::array<CompiledHandler, log::kNumEventTypes> handlers{};
    /** No kProgram entry anywhere: every record's cost is a table
     *  lookup, enabling the whole-batch bulk drain. */
    bool all_const = true;
};

/**
 * Lower @p ir against @p lifeguard's sealed handler table. Asserts
 * that the description and the table cover exactly the same event
 * types — a described-but-unregistered (or registered-but-undescribed)
 * type would make the fused tier diverge from the per-record tier,
 * which is the one invariant this subsystem must never break.
 *
 * Coordinator-only: runs at engine construction, before any record
 * flows and before any worker thread exists.
 */
CompiledDispatch compileHandlers(const Lifeguard& lifeguard,
                                 const ir::LifeguardIR& ir)
    LBA_COORDINATOR_ONLY;

/**
 * Interpret @p program for one record. Specialized per cost flavour at
 * compile time (the kernel instantiation is selected statically by
 * ir::invokeKernel), with a computed-goto dispatch loop under GCC and
 * clang and a plain switch elsewhere. Charges identical cost to the
 * handler body the program was lowered from.
 */
template <typename Cost>
inline void
runIrProgram(const ir::IrProgram& program, Lifeguard& lifeguard,
             const log::EventRecord& record, Cost& cost)
{
    const ir::IrInst* inst = program.insts.data();
    const ir::IrInst* const end = inst + program.insts.size();
#if defined(__GNUC__) || defined(__clang__)
    // Threaded dispatch: one indirect goto per IR instruction, no
    // bounds re-check, no per-iteration switch.
    static const void* const kOps[] = {&&op_charge, &&op_range_exit,
                                       &&op_kernel};
#define LBA_IR_NEXT()                                                    \
    do {                                                                 \
        if (inst == end) return;                                         \
        goto* kOps[static_cast<std::size_t>(inst->op)];                  \
    } while (0)
    LBA_IR_NEXT();
op_charge:
    cost.instrs(inst->cycles);
    ++inst;
    LBA_IR_NEXT();
op_range_exit:
    if (record.addr < inst->base ||
        record.addr >= inst->base + inst->bytes) {
        cost.instrs(inst->cycles);
        return;
    }
    ++inst;
    LBA_IR_NEXT();
op_kernel:
    ir::invokeKernel(*inst, lifeguard, record, cost);
    ++inst;
    LBA_IR_NEXT();
#undef LBA_IR_NEXT
#else
    for (; inst != end; ++inst) {
        switch (inst->op) {
        case ir::IrOp::kCharge:
            cost.instrs(inst->cycles);
            break;
        case ir::IrOp::kRangeExit:
            if (record.addr < inst->base ||
                record.addr >= inst->base + inst->bytes) {
                cost.instrs(inst->cycles);
                return;
            }
            break;
        case ir::IrOp::kKernel:
            ir::invokeKernel(*inst, lifeguard, record, cost);
            break;
        }
    }
#endif
}

} // namespace lba::lifeguard
