#pragma once
/**
 * @file
 * Findings: the bugs/attacks/races a lifeguard reports.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lba::lifeguard {

/** Categories of problems the bundled lifeguards can detect. */
enum class FindingKind : std::uint8_t {
    kUnallocatedAccess = 0, ///< AddrCheck: access to unallocated heap
    kDoubleFree,            ///< AddrCheck: free of a non-live block
    kMemoryLeak,            ///< AddrCheck: live block at program end
    kTaintedJump,           ///< TaintCheck: jump target from input data
    kDataRace,              ///< LockSet: insufficiently locked access
    kCallRetMismatch,       ///< examples: broken call/return pairing
    kTagMismatch,           ///< BoundsCheck: pointer/memory tag differ
    kLeakSuspect,           ///< MemLeak: block unreferenced for epochs
    kOther,

    kNumFindingKinds
};

/** Printable name of a finding kind. */
const char* findingKindName(FindingKind kind);

/** One reported problem, attributed to program location and thread. */
struct Finding
{
    FindingKind kind = FindingKind::kOther;
    /** pc of the offending instruction (0 for end-of-run findings). */
    Addr pc = 0;
    /** Data address involved (block base, jump target, granule...). */
    Addr addr = 0;
    ThreadId tid = 0;
    std::string message;
};

/** Render a finding for reports. */
std::string toString(const Finding& finding);

} // namespace lba::lifeguard
