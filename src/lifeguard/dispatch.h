#pragma once
/**
 * @file
 * The lifeguard-core dispatch engine (paper Section 2).
 *
 * Models the `nlba` (next LBA record) instruction: each handler ends by
 * issuing nlba, which pops the next record from the decompression engine,
 * places key event values (memory address etc.) directly into the register
 * file, and jumps through a per-event-type handler table. Because the jump
 * table index is known as soon as the record is visible, the lookup
 * pipelines with the previous handler; we charge a small fixed dispatch
 * cost per record (default 1 cycle).
 *
 * Handler work is charged through a CostSink that routes metadata accesses
 * through the lifeguard core's caches.
 */

#include <array>

#include "lifeguard/lifeguard.h"
#include "mem/hierarchy.h"
#include "stats/histogram.h"

namespace lba::lifeguard {

/** Dispatch engine tunables. */
struct DispatchConfig
{
    /** Fixed cycles per nlba dispatch (jump-table lookup, pipelined). */
    Cycles dispatch_cycles = 1;
    /** Which core of the hierarchy consumes the log. */
    unsigned core = 1;
};

/** Aggregate dispatch statistics. */
struct DispatchStats
{
    std::uint64_t records = 0;
    Cycles total_cycles = 0;
    std::array<std::uint64_t, log::kNumEventTypes> records_by_type{};
    std::array<Cycles, log::kNumEventTypes> cycles_by_type{};
};

/**
 * Drives one lifeguard from a record stream, producing per-record cycle
 * costs for the coupled timing model.
 */
class DispatchEngine
{
  public:
    /**
     * @param lifeguard The lifeguard whose handlers consume records.
     * @param hierarchy Cache hierarchy shared with the application core.
     * @param config    Dispatch tunables.
     */
    DispatchEngine(Lifeguard& lifeguard, mem::CacheHierarchy& hierarchy,
                   const DispatchConfig& config = {});

    /**
     * Consume one record: dispatch + handler execution.
     * @return Cycles the lifeguard core spent on this record.
     */
    Cycles consume(const log::EventRecord& record);

    /**
     * Run the lifeguard's end-of-program hook.
     * @return Cycles spent in the final pass.
     */
    Cycles finish();

    const DispatchStats& stats() const { return stats_; }
    Lifeguard& lifeguard() { return lifeguard_; }

  private:
    /** CostSink charging the lifeguard core. */
    class Sink : public CostSink
    {
      public:
        Sink(mem::CacheHierarchy& hierarchy, unsigned core)
            : hierarchy_(hierarchy), core_(core)
        {
        }

        void instrs(std::uint32_t count) override { cycles_ += count; }

        void
        memAccess(Addr addr, bool is_write) override
        {
            cycles_ += 1 + hierarchy_.dataAccess(core_, addr, is_write);
        }

        Cycles take()
        {
            Cycles c = cycles_;
            cycles_ = 0;
            return c;
        }

      private:
        mem::CacheHierarchy& hierarchy_;
        unsigned core_;
        Cycles cycles_ = 0;
    };

    Lifeguard& lifeguard_;
    DispatchConfig config_;
    Sink sink_;
    DispatchStats stats_;
};

} // namespace lba::lifeguard
