#pragma once
/**
 * @file
 * The lifeguard-core dispatch engine (paper Section 2).
 *
 * Models the `nlba` (next LBA record) instruction: each handler ends by
 * issuing nlba, which pops the next record from the decompression engine,
 * places key event values (memory address etc.) directly into the register
 * file, and jumps through a per-event-type handler table. Because the jump
 * table index is known as soon as the record is visible, the lookup
 * pipelines with the previous handler; we charge a small fixed dispatch
 * cost per record (default 1 cycle).
 *
 * Host-side dispatch mirrors that table, in three tiers. At
 * construction the engine *resolves* the lifeguard's handler table: a
 * registered handler is entered directly; for legacy lifeguards (no
 * registrations) every slot falls back to the virtual handleEvent()
 * call; for table-style lifeguards an unregistered event type resolves
 * to a no-op. consume() is the retained per-record virtual tier; the
 * batched tier (consumeBatch) drains whole record spans through the
 * resolved table; the fused tier (consumeBatchFused) goes further —
 * when the lifeguard describes its handlers as IR (ir.h), the engine
 * lowers the description once at construction (compiler.h) and drains
 * each same-event-type run through a specialized loop with no
 * per-record indirect call at all (lifeguards without an IR
 * description transparently fall back to the batched tier). All tiers
 * charge identical simulated cycles for the same record stream; only
 * host speed differs (bench/micro_dispatch.cc,
 * tests/dispatch_fused_test.cpp).
 *
 * Handler work is charged through a CostSink that routes metadata accesses
 * through the lifeguard core's caches.
 *
 */

#include <array>
#include <span>

#include "common/thread_annotations.h"
#include "lifeguard/compiler.h"
#include "lifeguard/lifeguard.h"
#include "log/log_buffer.h"
#include "mem/hierarchy.h"
#include "stats/histogram.h"

namespace lba::lifeguard {

/** Dispatch engine tunables. */
struct DispatchConfig
{
    /** Fixed cycles per nlba dispatch (jump-table lookup, pipelined). */
    Cycles dispatch_cycles = 1;
    /** Which core of the hierarchy consumes the log. */
    unsigned core = 1;
};

/**
 * Aggregate dispatch statistics, merged across the engine's two
 * ownership domains: the record counters (records, records_by_type,
 * batches) belong to whichever thread runs the handlers — the
 * coordinator in serial mode, this engine's worker lane in threaded
 * mode — while the cycle counters (total_cycles, cycles_by_type) are
 * always charged on the coordinating thread, because they come from
 * the shared, order-sensitive cache hierarchy. stats() assembles this
 * snapshot; read it only while the engine is quiescent (after a run,
 * or between flush barriers).
 */
struct DispatchStats
{
    std::uint64_t records = 0;
    Cycles total_cycles = 0;
    std::array<std::uint64_t, log::kNumEventTypes> records_by_type{};
    std::array<Cycles, log::kNumEventTypes> cycles_by_type{};
    /** consumeBatch()/consumeBatchDeferred() calls (0 per-record). */
    std::uint64_t batches = 0;
};

/**
 * The functional side of one dispatched batch, with the timing side
 * deferred: per record, the handler-instruction cycles it charged and
 * the ordered list of metadata memory accesses it performed.
 *
 * This is what makes threaded execution cycle-identical to serial
 * (docs/ARCHITECTURE.md "Threaded execution"): handler *execution*
 * (shadow-memory updates, findings — all state private to one
 * lifeguard) runs on a worker thread and records its accesses here,
 * while the *cost* of those accesses — which routes through the
 * shared, order-sensitive L2 model — is computed later by
 * replayDeferred() on the coordinating thread, in the global arrival
 * order the serial path charged them in.
 */
struct DeferredBatch
{
    /** One captured metadata access (shared with the fused tier's
     *  DeferredCost, which pushes into `ops` directly). */
    using MemOp = ir::MemOp;

    struct PerRecord
    {
        /** Cycles charged through CostSink::instrs(). */
        std::uint32_t instr_cycles = 0;
        /** This record's slice of `ops` ([first_op, first_op+num_ops)). */
        std::uint32_t first_op = 0;
        std::uint32_t num_ops = 0;
    };

    std::vector<PerRecord> records;
    /** Metadata accesses of the whole batch, in execution order. */
    std::vector<MemOp> ops;

    void
    clear()
    {
        records.clear();
        ops.clear();
    }
};

/**
 * Drives one lifeguard from a record stream, producing per-record cycle
 * costs for the coupled timing model.
 */
class DispatchEngine
{
  public:
    /**
     * @param lifeguard The lifeguard whose handlers consume records.
     *                  Its handler table must be fully registered (i.e.
     *                  its constructor has run) before the engine is
     *                  built; the engine resolves the table once, here,
     *                  and seals it (late setHandler() calls assert).
     * @param hierarchy Cache hierarchy shared with the application core.
     * @param config    Dispatch tunables.
     */
    DispatchEngine(Lifeguard& lifeguard, mem::CacheHierarchy& hierarchy,
                   const DispatchConfig& config = {});

    /**
     * Statically adopt this engine's *functional* side: the thread
     * that runs its handlers and owns its record counters. That is the
     * coordinator on the serial paths and the engine's worker lane
     * between publish/done barriers on the threaded path — which is
     * why it is a per-engine capability rather than a fixed global
     * role. Call from exactly the code that establishes the ownership:
     * the serial drain loops and ThreadedExecutor::workerLoop().
     */
    void assumeFunctionalOwner() const LBA_ASSERT_CAPABILITY(functional_side_)
    {
    }

    /**
     * Consume one record: dispatch + handler execution, through the
     * virtual handleEvent() path (the retained per-record baseline).
     * Serial path: charges the shared hierarchy directly, so the
     * caller must be the coordinator *and* own the functional side.
     * @return Cycles the lifeguard core spent on this record.
     */
    Cycles consume(const log::EventRecord& record)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Consume one record through the resolved handler table (no
     * virtual dispatch). Charges exactly the cycles consume() would.
     * @return Cycles the lifeguard core spent on this record.
     */
    Cycles consumeTable(const log::EventRecord& record)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Drain a contiguous record batch through the handler table, in
     * order. When @p costs is non-null, costs[i] receives record i's
     * cycles (the timing engine folds them into its recurrence).
     * @return Total cycles across the batch.
     */
    Cycles consumeBatch(const log::EventRecord* records,
                        std::size_t count, Cycles* costs = nullptr)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Drain a log-buffer span (see log::LogBuffer::frontSpan) through
     * the handler table. The caller still pops the buffer.
     * @return Total cycles across the batch.
     */
    Cycles consumeBatch(std::span<const log::LogBuffer::Entry> entries,
                        Cycles* costs = nullptr)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Drain a contiguous record batch through the fused tier: the
     * batch is scanned for maximal same-event-type runs and each run
     * is drained through the loop compiled from the lifeguard's IR
     * description — constant-cost runs in bulk with no per-record
     * call, the rest through the computed-goto interpreter
     * (compiler.h). Charges exactly the cycles consumeBatch() would;
     * a lifeguard without an IR description falls back to
     * consumeBatch() transparently. Same ownership contract as
     * consumeBatch(): serial path, coordinator + functional side.
     * @return Total cycles across the batch.
     */
    Cycles consumeBatchFused(const log::EventRecord* records,
                             std::size_t count, Cycles* costs = nullptr)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Fused drain of a log-buffer span (see log::LogBuffer::frontSpan).
     * The caller still pops the buffer.
     * @return Total cycles across the batch.
     */
    Cycles
    consumeBatchFused(std::span<const log::LogBuffer::Entry> entries,
                      Cycles* costs = nullptr)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Functional half of consumeBatchFused() for threaded execution:
     * the fused twin of consumeBatchDeferred(), with the same
     * ownership contract — it runs on the worker that owns this
     * engine's functional side and captures costs into @p out for the
     * coordinator's replayDeferred() pass, which is unchanged (the
     * captured batches are indistinguishable from the batched tier's).
     * Falls back to consumeBatchDeferred() when the lifeguard has no
     * IR description.
     */
    void consumeBatchFusedDeferred(const log::EventRecord* records,
                                   std::size_t count, DeferredBatch& out)
        LBA_REQUIRES(functional_side_);

    /** True when the lifeguard opted into the fused tier (an IR
     *  description was present and compiled at construction). */
    bool fusedTierCompiled() const { return fused_; }

    /**
     * Functional half of consumeBatch() for threaded execution: run
     * every handler (in order) against the lifeguard's state, but
     * capture the costs into @p out instead of charging the shared
     * cache hierarchy. Safe to call from a worker thread that owns
     * this engine, concurrently with other engines' workers — it
     * touches only the lifeguard, the record counters of stats(), and
     * @p out; hence it requires only the functional side, not the
     * coordinator role. Pair every call with replayDeferred() over the
     * same batch on the coordinating thread.
     */
    void consumeBatchDeferred(const log::EventRecord* records,
                              std::size_t count, DeferredBatch& out)
        LBA_REQUIRES(functional_side_);

    /**
     * Timing half: charge record @p i of @p batch through this
     * engine's core against the shared hierarchy — exactly the cycles
     * consumeBatch() would have charged for it — and fold them into
     * the cycle counters of stats(). Coordinating thread only; calls
     * must follow global record arrival order across engines so the
     * shared-L2 interleaving matches the serial path.
     * @return Cycles the lifeguard core spends on this record.
     */
    Cycles replayDeferred(const log::EventRecord& record,
                          const DeferredBatch& batch, std::size_t i)
        LBA_COORDINATOR_ONLY;

    /**
     * Run the lifeguard's end-of-program hook. The hook both mutates
     * lifeguard state and charges the shared hierarchy, so it needs
     * the coordinator role and the functional side (at end of run the
     * coordinator holds both — the workers have joined).
     * @return Cycles spent in the final pass.
     */
    Cycles finish()
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /**
     * Merged snapshot of both ownership domains' counters (see
     * DispatchStats). Quiescent reads only — which is why this is the
     * one accessor the analysis deliberately waives: it reads fields
     * of both sides.
     */
    DispatchStats
    stats() const LBA_NO_THREAD_SAFETY_ANALYSIS
    {
        DispatchStats merged;
        merged.records = functional_.records;
        merged.records_by_type = functional_.records_by_type;
        merged.batches = functional_.batches;
        merged.total_cycles = timing_.total_cycles;
        merged.cycles_by_type = timing_.cycles_by_type;
        return merged;
    }

    Lifeguard& lifeguard() { return lifeguard_; }

  private:
    /** CostSink charging the lifeguard core. */
    class Sink : public CostSink
    {
      public:
        Sink(mem::CacheHierarchy& hierarchy, unsigned core)
            : hierarchy_(hierarchy), core_(core)
        {
        }

        void instrs(std::uint32_t count) override { cycles_ += count; }

        void
        memAccess(Addr addr, bool is_write) override
        {
            cycles_ += 1 + hierarchy_.dataAccess(core_, addr, is_write);
        }

        Cycles take()
        {
            Cycles c = cycles_;
            cycles_ = 0;
            return c;
        }

      private:
        mem::CacheHierarchy& hierarchy_;
        unsigned core_;
        Cycles cycles_ = 0;
    };

    /** Dispatch one record through the resolved table, with the
     *  unregistered-type fast path (batched loops). Runs the handler
     *  (functional side) and charges the shared hierarchy through
     *  sink_ (coordinator), so it is a serial-path helper. */
    Cycles dispatchOne(const log::EventRecord& record)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /** The fused serial drain loop (see consumeBatchFused), templated
     *  over the record accessor so the pointer and log-buffer-span
     *  entry points share one body. Carries the same capability
     *  requirements as the serial batched loops it replaces. */
    template <typename RecordAt>
    Cycles fusedDrain(std::size_t count, RecordAt at, Cycles* costs)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_);

    /** Fold one consumed record into the statistics (serial paths:
     *  both domains advance together). */
    Cycles
    account(const log::EventRecord& record, Cycles cycles)
        LBA_REQUIRES(::lba::threading::coordinator_role, functional_side_)
    {
        ++functional_.records;
        timing_.total_cycles += cycles;
        auto type = static_cast<std::size_t>(record.type);
        ++functional_.records_by_type[type];
        timing_.cycles_by_type[type] += cycles;
        return cycles;
    }

    /** Record counters, owned by whichever thread runs the handlers
     *  (see DispatchStats). */
    struct FunctionalCounts
    {
        std::uint64_t records = 0;
        std::array<std::uint64_t, log::kNumEventTypes> records_by_type{};
        std::uint64_t batches = 0;
    };

    /** Cycle counters, charged only on the coordinating thread. */
    struct TimingCounts
    {
        Cycles total_cycles = 0;
        std::array<Cycles, log::kNumEventTypes> cycles_by_type{};
    };

    /** The engine's functional side as a per-engine capability: held
     *  by the one thread currently running its handlers. */
    threading::ThreadRole functional_side_;

    Lifeguard& lifeguard_;
    DispatchConfig config_;
    /** For the fused tier's DirectCost (same hierarchy sink_ wraps). */
    mem::CacheHierarchy& hierarchy_;
    /** Charges the shared, order-sensitive hierarchy — coordinator
     *  territory (workers capture costs into DeferredBatch instead). */
    Sink sink_ LBA_GUARDED_BY(::lba::threading::coordinator_role);
    FunctionalCounts functional_ LBA_GUARDED_BY(functional_side_);
    TimingCounts timing_ LBA_GUARDED_BY(::lba::threading::coordinator_role);
    /** Handler table with the null slots resolved (see file comment). */
    std::array<Lifeguard::Handler, log::kNumEventTypes> resolved_;
    /** The lifeguard's lowered IR (valid when fused_; compiled once,
     *  at construction, on the coordinating thread). */
    CompiledDispatch compiled_;
    bool fused_ = false;
};

} // namespace lba::lifeguard
