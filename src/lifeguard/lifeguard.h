#pragma once
/**
 * @file
 * The lifeguard programming model.
 *
 * A lifeguard is "primarily organized as a collection of event handlers"
 * (paper Section 2): it consumes event records one at a time and performs
 * its checking work. Handlers here are written in C++ but report their
 * *simulated cost* — handler instruction counts and metadata memory
 * accesses — through a CostSink, exactly mirroring the paper's own
 * methodology of event-driven lifeguard execution on a modelled core.
 * examples/custom_lifeguard.cpp shows how to write one against this
 * interface; docs/ARCHITECTURE.md describes where it sits in the system.
 *
 * The same Lifeguard instance runs unchanged on both platforms:
 *  - LBA: the dispatch engine on the lifeguard core feeds it records from
 *    the log buffer and charges costs to the lifeguard core's clock/caches.
 *  - DBI baseline: the inline instrumentation engine feeds it the same
 *    records on the application core, charging costs there.
 * Platform changes *when/where* the cost is paid, never the findings.
 */

#include <vector>

#include "common/types.h"
#include "lifeguard/finding.h"
#include "log/event.h"

namespace lba::lifeguard {

/**
 * Receives the simulated cost of handler execution. Implemented by each
 * monitoring platform.
 */
class CostSink
{
  public:
    virtual ~CostSink() = default;

    /** Charge @p count single-cycle handler instructions. */
    virtual void instrs(std::uint32_t count) = 0;

    /**
     * Charge one handler load/store of lifeguard metadata at simulated
     * address @p addr (routed through the consuming core's caches; the
     * access cycle itself is included, do not double count with instrs()).
     */
    virtual void memAccess(Addr addr, bool is_write) = 0;
};

/** A CostSink that discards costs (for functional-only runs and tests). */
class NullCostSink : public CostSink
{
  public:
    void instrs(std::uint32_t) override {}
    void memAccess(Addr, bool) override {}
};

/**
 * Base class for all lifeguards.
 */
class Lifeguard
{
  public:
    virtual ~Lifeguard() = default;

    /** Human-readable lifeguard name ("AddrCheck", ...). */
    virtual const char* name() const = 0;

    /** Process one event record, charging handler cost to @p cost. */
    virtual void handleEvent(const log::EventRecord& record,
                             CostSink& cost) = 0;

    /**
     * End-of-program hook (e.g. AddrCheck's leak scan). Called once after
     * the last record has been consumed.
     */
    virtual void finish(CostSink& cost) { (void)cost; }

    /** All problems reported so far, in detection order. */
    const std::vector<Finding>& findings() const { return findings_; }

    /** Number of findings of a particular kind. */
    std::size_t
    countFindings(FindingKind kind) const
    {
        std::size_t n = 0;
        for (const Finding& f : findings_) {
            if (f.kind == kind) ++n;
        }
        return n;
    }

  protected:
    /** Report a problem. */
    void report(Finding finding) { findings_.push_back(std::move(finding)); }

  private:
    std::vector<Finding> findings_;
};

} // namespace lba::lifeguard
