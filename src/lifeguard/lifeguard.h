#pragma once
/**
 * @file
 * The lifeguard programming model.
 *
 * A lifeguard is "primarily organized as a collection of event handlers"
 * (paper Section 2): it consumes event records one at a time and performs
 * its checking work. Handlers here are written in C++ but report their
 * *simulated cost* — handler instruction counts and metadata memory
 * accesses — through a CostSink, exactly mirroring the paper's own
 * methodology of event-driven lifeguard execution on a modelled core.
 * docs/LIFEGUARD_GUIDE.md is the start-to-finish authoring guide;
 * examples/custom_lifeguard.cpp shows a complete worked lifeguard;
 * docs/ARCHITECTURE.md describes where it sits in the system.
 *
 * Handler registration mirrors the paper's `nlba` handler table: a
 * lifeguard registers one handler function per event type at
 * construction (onEvent<&MyGuard::onLoad>(EventType::kLoad)), and the
 * dispatch engine jumps straight through that table — no virtual call,
 * no per-record switch. Event types without a handler cost dispatch
 * cycles only. The virtual handleEvent() remains as a compatibility
 * shim: its base implementation dispatches through the table, so
 * table-registered lifeguards work unchanged with direct handleEvent()
 * callers (tests, the DBI platform), while legacy lifeguards may
 * instead override handleEvent() and skip registration entirely. A
 * lifeguard must pick ONE of the two styles — registering handlers and
 * overriding handleEvent() on the same class would give the two
 * dispatch paths different behaviour. Register handlers in the
 * constructor: a dispatch engine seals the table when it resolves it,
 * and later registration asserts. A lifeguard that neither registers
 * nor overrides is a valid no-op monitor (every event costs dispatch
 * cycles only) — if your checker finds nothing, check your
 * registrations first.
 *
 * The same Lifeguard instance runs unchanged on both platforms:
 *  - LBA: the dispatch engine on the lifeguard core feeds it records from
 *    the log buffer and charges costs to the lifeguard core's clock/caches.
 *  - DBI baseline: the inline instrumentation engine feeds it the same
 *    records on the application core, charging costs there.
 * Platform changes *when/where* the cost is paid, never the findings.
 */

#include <array>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "lifeguard/finding.h"
#include "log/event.h"

namespace lba::lifeguard {

namespace ir {
class LifeguardIR;
} // namespace ir

/**
 * Receives the simulated cost of handler execution. Implemented by each
 * monitoring platform.
 */
class CostSink
{
  public:
    virtual ~CostSink() = default;

    /** Charge @p count single-cycle handler instructions. */
    virtual void instrs(std::uint32_t count) = 0;

    /**
     * Charge one handler load/store of lifeguard metadata at simulated
     * address @p addr (routed through the consuming core's caches; the
     * access cycle itself is included, do not double count with instrs()).
     */
    virtual void memAccess(Addr addr, bool is_write) = 0;
};

/** A CostSink that discards costs (for functional-only runs and tests). */
class NullCostSink : public CostSink
{
  public:
    void instrs(std::uint32_t) override {}
    void memAccess(Addr, bool) override {}
};

namespace detail {

/** The class a pointer-to-member-function belongs to. */
template <typename> struct MemberClass;

template <typename C, typename R, typename... Args>
struct MemberClass<R (C::*)(Args...)>
{
    using type = C;
};

} // namespace detail

/**
 * Base class for all lifeguards.
 */
class Lifeguard
{
  public:
    /**
     * One entry of the per-event-type handler table. @p self is the
     * registering lifeguard (handlers are plain functions so the table
     * is a flat array of jump targets, like the hardware's).
     */
    using Handler = void (*)(Lifeguard& self,
                             const log::EventRecord& record,
                             CostSink& cost);

    virtual ~Lifeguard() = default;

    /** Human-readable lifeguard name ("AddrCheck", ...). */
    virtual const char* name() const = 0;

    /**
     * Process one event record, charging handler cost to @p cost.
     *
     * Compatibility shim: the base implementation dispatches through
     * the handler table (a type with no handler is a no-op). Legacy
     * lifeguards override this instead of registering handlers; such
     * overrides are reached by the dispatch engine through its virtual
     * fallback, never mixed with table entries.
     */
    virtual void
    handleEvent(const log::EventRecord& record, CostSink& cost)
    {
        Handler handler =
            handlers_[static_cast<std::size_t>(record.type)];
        if (handler) handler(*this, record, cost);
    }

    /**
     * End-of-program hook (e.g. AddrCheck's leak scan). Called once after
     * the last record has been consumed.
     */
    virtual void finish(CostSink& cost) { (void)cost; }

    /** The per-event-type handler table (null = event ignored). */
    const std::array<Handler, log::kNumEventTypes>&
    handlers() const
    {
        return handlers_;
    }

    /** True when at least one handler was registered (table style). */
    bool usesHandlerTable() const { return uses_handler_table_; }

    /**
     * The lifeguard's handler-IR description (ir.h), or nullptr when
     * it has none. A non-null description opts the lifeguard into the
     * fused dispatch tier: the dispatch engine lowers it once at
     * construction (lifeguard::compileHandlers) and drains record runs
     * through specialized loops instead of the handler table. The
     * description must mirror the registered table exactly — same
     * event types, same per-record cost — which handler authors get by
     * writing each handler body once, templated over the cost
     * accumulator (docs/LIFEGUARD_GUIDE.md, "Describing handlers as
     * IR"). Lifeguards without a description (including all legacy
     * virtual ones) transparently stay on the batched tier.
     */
    virtual const ir::LifeguardIR* handlerIR() const { return nullptr; }

    /**
     * Freeze the handler table. Called by a dispatch engine when it
     * resolves the table; registering a handler afterwards would make
     * the engine's snapshot diverge from the live table (and the
     * batched path diverge from the per-record path), so setHandler()
     * asserts against it. Idempotent.
     */
    void sealHandlerTable() { handlers_sealed_ = true; }

    /** All problems reported so far, in detection order. */
    const std::vector<Finding>& findings() const { return findings_; }

    /** Number of findings of a particular kind. */
    std::size_t
    countFindings(FindingKind kind) const
    {
        std::size_t n = 0;
        for (const Finding& f : findings_) {
            if (f.kind == kind) ++n;
        }
        return n;
    }

  protected:
    /** Report a problem. */
    void report(Finding finding) { findings_.push_back(std::move(finding)); }

    /**
     * Register @p handler for @p type. Call from the constructor;
     * re-registering a type replaces its entry. Asserts once a
     * dispatch engine has sealed the table (see sealHandlerTable()).
     */
    void
    setHandler(log::EventType type, Handler handler)
    {
        LBA_ASSERT(!handlers_sealed_,
                   "handler registered after a dispatch engine "
                   "resolved the table; register in the constructor");
        handlers_[static_cast<std::size_t>(type)] = handler;
        uses_handler_table_ = true;
    }

    /**
     * Register a member function as the handler for @p type:
     *
     * @code
     *   onEvent<&AddrCheck::checkAccess>(log::EventType::kLoad);
     * @endcode
     *
     * The member must have the signature
     * `void (const log::EventRecord&, CostSink&)` on the registering
     * class (or a base of it).
     */
    template <auto Method>
    void
    onEvent(log::EventType type)
    {
        setHandler(type, [](Lifeguard& self,
                            const log::EventRecord& record,
                            CostSink& cost) {
            using Class = typename detail::MemberClass<
                decltype(Method)>::type;
            (static_cast<Class&>(self).*Method)(record, cost);
        });
    }

  private:
    std::vector<Finding> findings_;
    std::array<Handler, log::kNumEventTypes> handlers_{};
    bool uses_handler_table_ = false;
    bool handlers_sealed_ = false;
};

} // namespace lba::lifeguard
