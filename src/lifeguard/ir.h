#pragma once
/**
 * @file
 * The lifeguard handler IR (fused dispatch, tier three).
 *
 * The paper's `nlba` instruction makes dispatch effectively free in
 * hardware; the host simulation still paid an indirect call per record
 * even on the batched path. The fused tier closes that gap: each
 * lifeguard *describes* its registered handlers as a tiny per-event-type
 * program over this IR, and lifeguard::compileHandlers() lowers those
 * descriptions into specialized drain loops (see compiler.h). The
 * vocabulary is deliberately small — it matches what the three paper
 * lifeguards actually do per record:
 *
 *   kCharge     charge N handler instructions (pure cycle cost);
 *   kRangeExit  compare the record address against a fixed range and
 *               end the handler (charging an exit cost) when it falls
 *               outside — the "is this a heap/checked address?" guard
 *               that begins AddrCheck and LockSet;
 *   kKernel     run a fused kernel: a non-virtual, statically-typed
 *               function holding the handler's shadow loads/stores,
 *               propagation and compare/report logic, with the
 *               shadow-memory access inlined (ShadowMemory's last-page
 *               memo becomes an inline cache — no virtual CostSink call
 *               between the handler and the cost accumulator).
 *
 * A program that is pure kCharge compiles to a constant — whole
 * same-type runs of such records are drained with no per-record call at
 * all (the bulk fast path bench/micro_dispatch.cc gates at >= 2x over
 * batched dispatch).
 *
 * Cost identity is by construction: lifeguards write each handler body
 * ONCE as a template over the cost accumulator and instantiate it for
 * the virtual CostSink path (per-record and batched tiers), for
 * DirectCost (fused serial tier) and for DeferredCost (fused threaded
 * tier). The two fused accumulators reproduce exactly the arithmetic of
 * DispatchEngine's internal sinks, so every tier charges identical
 * simulated cycles for identical record streams — the invariant
 * tests/dispatch_fused_test.cpp proves differentially.
 *
 * docs/LIFEGUARD_GUIDE.md ("Describing handlers as IR") is the
 * authoring walkthrough; docs/ARCHITECTURE.md covers the three dispatch
 * tiers.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "log/event.h"
#include "mem/hierarchy.h"

namespace lba::lifeguard {

class Lifeguard;

namespace ir {

/** One lifeguard-metadata access (address + direction). */
struct MemOp
{
    Addr addr = 0;
    bool is_write = false;
};

/**
 * Fused cost accumulator, serial flavour: charges the shared cache
 * hierarchy directly. Mirrors DispatchEngine's internal CostSink
 * arithmetic exactly (each metadata access costs its own cycle plus
 * the hierarchy penalty), but with no virtual dispatch between the
 * handler body and the accumulator.
 */
class DirectCost
{
  public:
    DirectCost(mem::CacheHierarchy& hierarchy, unsigned core)
        : hierarchy_(hierarchy), core_(core)
    {
    }

    void instrs(std::uint32_t count) { cycles_ += count; }

    void
    memAccess(Addr addr, bool is_write)
    {
        cycles_ += 1 + hierarchy_.dataAccess(core_, addr, is_write);
    }

    /** Cycles accumulated since the last take (handler cost). */
    Cycles
    take()
    {
        Cycles c = cycles_;
        cycles_ = 0;
        return c;
    }

  private:
    mem::CacheHierarchy& hierarchy_;
    unsigned core_;
    Cycles cycles_ = 0;
};

/**
 * Fused cost accumulator, deferred flavour (threaded execution):
 * captures instruction cycles and ordered metadata accesses for the
 * coordinator to replay through the shared hierarchy later. Mirrors
 * the batched tier's recording sink, so DispatchEngine::replayDeferred
 * charges identical cycles either way.
 */
class DeferredCost
{
  public:
    explicit DeferredCost(std::vector<MemOp>& ops) : ops_(ops) {}

    void instrs(std::uint32_t count) { instr_cycles_ += count; }

    void
    memAccess(Addr addr, bool is_write)
    {
        ops_.push_back({addr, is_write});
        ++num_ops_;
    }

    /** Instruction cycles since the last take. */
    std::uint32_t
    takeInstrs()
    {
        std::uint32_t c = instr_cycles_;
        instr_cycles_ = 0;
        return c;
    }

    /** Metadata accesses pushed since the last take. */
    std::uint32_t
    takeOps()
    {
        std::uint32_t n = num_ops_;
        num_ops_ = 0;
        return n;
    }

  private:
    std::vector<MemOp>& ops_;
    std::uint32_t instr_cycles_ = 0;
    std::uint32_t num_ops_ = 0;
};

/** Fused kernel entry points: one instantiation per cost flavour of a
 *  handler body written once as a template over the accumulator. */
using DirectKernel = void (*)(Lifeguard&, const log::EventRecord&,
                              DirectCost&);
using DeferredKernel = void (*)(Lifeguard&, const log::EventRecord&,
                                DeferredCost&);

/** IR opcodes (see the file comment). */
enum class IrOp : std::uint8_t
{
    kCharge = 0,
    kRangeExit = 1,
    kKernel = 2,
};

/** One IR instruction (a tagged union kept flat and trivially
 *  copyable; unused fields are zero). */
struct IrInst
{
    IrOp op = IrOp::kCharge;
    /** kCharge: cycles charged. kRangeExit: cycles charged on exit. */
    std::uint32_t cycles = 0;
    /** kRangeExit: checked range [base, base + bytes). */
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** kKernel: the two instantiations of the handler body. */
    DirectKernel direct = nullptr;
    DeferredKernel deferred = nullptr;
};

/** The IR program for one event type: instructions run in order until
 *  the end or a kRangeExit takes its exit. */
struct IrProgram
{
    std::vector<IrInst> insts;
};

/** Select the kernel instantiation matching the cost accumulator. */
inline void
invokeKernel(const IrInst& inst, Lifeguard& lifeguard,
             const log::EventRecord& record, DirectCost& cost)
{
    inst.direct(lifeguard, record, cost);
}

inline void
invokeKernel(const IrInst& inst, Lifeguard& lifeguard,
             const log::EventRecord& record, DeferredCost& cost)
{
    inst.deferred(lifeguard, record, cost);
}

/**
 * Fluent builder for one event type's program (LifeguardIR::define):
 *
 * @code
 *   ir_.define(EventType::kLoad)
 *       .charge(2)
 *       .rangeExit(heap_base, heap_bytes, 1)
 *       .kernel([](Lifeguard& self, const log::EventRecord& r,
 *                  auto& cost) {
 *           static_cast<MyGuard&>(self).heapAccess(r, cost);
 *       });
 * @endcode
 */
class IrBuilder
{
  public:
    explicit IrBuilder(IrProgram& program) : program_(program) {}

    /** Append kCharge(@p cycles). */
    IrBuilder&
    charge(std::uint32_t cycles)
    {
        IrInst inst;
        inst.op = IrOp::kCharge;
        inst.cycles = cycles;
        program_.insts.push_back(inst);
        return *this;
    }

    /** Append kRangeExit: when record.addr falls outside
     *  [@p base, @p base + @p bytes), charge @p exit_cycles and end the
     *  handler. */
    IrBuilder&
    rangeExit(Addr base, std::uint64_t bytes, std::uint32_t exit_cycles)
    {
        IrInst inst;
        inst.op = IrOp::kRangeExit;
        inst.base = base;
        inst.bytes = bytes;
        inst.cycles = exit_cycles;
        program_.insts.push_back(inst);
        return *this;
    }

    /**
     * Append kKernel(@p fn). @p fn must be a captureless callable
     * (typically a generic lambda) invocable as
     * `fn(Lifeguard&, const log::EventRecord&, Cost&)` for both cost
     * flavours; it is lowered to its two function-pointer
     * instantiations here — which is what guarantees the serial and
     * deferred fused paths run the same body.
     */
    template <typename Fn>
    IrBuilder&
    kernel(Fn fn)
    {
        IrInst inst;
        inst.op = IrOp::kKernel;
        inst.direct = static_cast<DirectKernel>(fn);
        inst.deferred = static_cast<DeferredKernel>(fn);
        program_.insts.push_back(inst);
        return *this;
    }

  private:
    IrProgram& program_;
};

/**
 * A lifeguard's complete IR: one program per described event type.
 * Build in the constructor (alongside the handler registrations the
 * programs must mirror) and expose via Lifeguard::handlerIR();
 * compileHandlers() cross-checks the descriptions against the
 * registered table.
 */
class LifeguardIR
{
  public:
    /** Start (or extend) the program for @p type. */
    IrBuilder
    define(log::EventType type)
    {
        auto t = static_cast<std::size_t>(type);
        described_[t] = true;
        return IrBuilder(programs_[t]);
    }

    /** The program for @p type, or nullptr when not described. */
    const IrProgram*
    program(log::EventType type) const
    {
        auto t = static_cast<std::size_t>(type);
        return described_[t] ? &programs_[t] : nullptr;
    }

  private:
    std::array<IrProgram, log::kNumEventTypes> programs_;
    std::array<bool, log::kNumEventTypes> described_{};
};

} // namespace ir
} // namespace lba::lifeguard
