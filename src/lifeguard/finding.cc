/**
 * @file
 * Finding helpers.
 */

#include "lifeguard/finding.h"

#include <cstdio>

#include "common/assert.h"

namespace lba::lifeguard {

const char*
findingKindName(FindingKind kind)
{
    static const char* const names[] = {
        "UnallocatedAccess", "DoubleFree", "MemoryLeak", "TaintedJump",
        "DataRace", "CallRetMismatch", "TagMismatch", "LeakSuspect",
        "Other",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                      static_cast<std::size_t>(
                          FindingKind::kNumFindingKinds),
                  "finding name table must cover every kind");
    auto idx = static_cast<std::size_t>(kind);
    LBA_ASSERT(idx < static_cast<std::size_t>(
                         FindingKind::kNumFindingKinds),
               "invalid finding kind");
    return names[idx];
}

std::string
toString(const Finding& finding)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s tid=%u pc=0x%llx addr=0x%llx: ",
                  findingKindName(finding.kind),
                  static_cast<unsigned>(finding.tid),
                  static_cast<unsigned long long>(finding.pc),
                  static_cast<unsigned long long>(finding.addr));
    return std::string(buf) + finding.message;
}

} // namespace lba::lifeguard
