/**
 * @file
 * Data-race scenario: two threads update a shared counter; the buggy
 * version omits the lock, the fixed version takes it. LockSet (Eraser)
 * on the lifeguard core flags the buggy version and stays silent on the
 * fixed one — no false positive.
 *
 * Built on the workload generator's multithreaded "water" profile with
 * and without race injection, so the race is embedded in a realistic
 * instruction stream rather than a toy loop.
 */

#include <cstdio>
#include <memory>

#include "core/runner.h"
#include "lifeguards/lockset.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

lba::core::PlatformResult
run(bool inject_race)
{
    using namespace lba;
    workload::BugInjection bugs;
    bugs.race = inject_race;
    auto generated = workload::generate(
        *workload::findProfile("water"), bugs, 80000);
    core::Experiment experiment(generated.program);
    return experiment.runLba(
        [] { return std::make_unique<lifeguards::LockSet>(); });
}

} // namespace

int
main()
{
    using namespace lba;

    std::printf("=== LockSet race detection ===\n\n");

    std::printf("1) buggy build: both threads write the shared region "
                "without the lock\n");
    auto buggy = run(/*inject_race=*/true);
    std::printf("   findings (%zu):\n", buggy.findings.size());
    for (const auto& finding : buggy.findings) {
        std::printf("     %s\n", lifeguard::toString(finding).c_str());
    }

    std::printf("\n2) fixed build: every shared access inside "
                "lock/unlock\n");
    auto fixed = run(/*inject_race=*/false);
    std::printf("   findings: %zu (expected 0)\n",
                fixed.findings.size());

    std::printf("\nLockSet slowdown on this workload: %.1fx "
                "(paper average: 9.7x)\n",
                fixed.slowdown);

    bool ok = !buggy.findings.empty() && fixed.findings.empty();
    std::printf("race %s, clean run %s\n",
                buggy.findings.empty() ? "MISSED" : "DETECTED",
                fixed.findings.empty() ? "CLEAN" : "FALSE POSITIVE");
    return ok ? 0 : 1;
}
