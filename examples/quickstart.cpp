/**
 * @file
 * Quickstart: assemble a tiny program with a heap bug, run it under LBA
 * with the AddrCheck lifeguard, and print the findings and run report.
 *
 * This demonstrates the three layers of the public API:
 *   1. assembler::assemble     - source text -> program
 *   2. core::Experiment        - run a program on each platform
 *   3. lifeguard findings/stats - what the lifeguard saw, at what cost
 */

#include <cstdio>
#include <memory>

#include "asm/assembler.h"
#include "core/runner.h"
#include "lifeguards/addrcheck.h"

int
main()
{
    using namespace lba;

    // A program with a use-after-free: allocate, free, then read.
    const char* source = R"(
        li r1, 64
        syscall 1           ; r1 = alloc(64)
        mov r9, r1          ; keep the pointer
        sd r9, 0(r9)        ; use it while live: fine
        mov r1, r9
        syscall 2           ; free(r9)
        ld r2, 8(r9)        ; BUG: read after free
        halt
    )";
    auto assembled = assembler::assemble(source);
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly error (line %d): %s\n",
                     assembled.error_line, assembled.error.c_str());
        return 1;
    }

    core::Experiment experiment(assembled.program);
    auto result = experiment.runLba(
        [] { return std::make_unique<lifeguards::AddrCheck>(); });

    std::printf("=== LBA quickstart: AddrCheck ===\n");
    std::printf("application instructions : %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("unmonitored cycles       : %llu\n",
                static_cast<unsigned long long>(
                    experiment.unmonitored().cycles));
    std::printf("monitored cycles (LBA)   : %llu  (%.2fx slowdown)\n",
                static_cast<unsigned long long>(result.cycles),
                result.slowdown);
    std::printf("log records              : %llu  (%.3f bytes/record "
                "compressed)\n",
                static_cast<unsigned long long>(
                    result.lba.records_logged),
                result.lba.bytes_per_record);

    std::printf("\nfindings (%zu):\n", result.findings.size());
    for (const auto& finding : result.findings) {
        std::printf("  %s\n", lifeguard::toString(finding).c_str());
    }
    return result.findings.empty() ? 1 : 0; // the bug must be caught
}
