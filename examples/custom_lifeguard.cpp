/**
 * @file
 * Writing a new lifeguard against the public API.
 *
 * LBA's pitch over special-purpose dual-core checkers [paper refs 7, 8]
 * is that it is a *general-purpose* monitoring substrate: a new checker
 * is just another event-handler collection. This example implements a
 * call/return-pairing checker (the class of integrity checks those
 * special-purpose proposals hard-wired) in ~60 lines: it maintains a
 * per-thread shadow stack of expected return addresses and reports when
 * a return goes somewhere else (stack smash, longjmp, ROP...).
 *
 * It uses the handler-table API (docs/LIFEGUARD_GUIDE.md): one handler
 * per event type, registered in the constructor, dispatched through
 * the same per-type table the paper's `nlba` instruction jumps
 * through. Every other event type costs dispatch cycles only.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "asm/assembler.h"
#include "core/runner.h"
#include "lifeguard/lifeguard.h"

namespace {

using namespace lba;

/** Shadow-stack call/return integrity lifeguard. */
class CallRetChecker : public lifeguard::Lifeguard
{
  public:
    CallRetChecker()
    {
        onEvent<&CallRetChecker::onCall>(log::EventType::kCall);
        onEvent<&CallRetChecker::onCall>(log::EventType::kIndirectCall);
        onEvent<&CallRetChecker::onReturn>(log::EventType::kReturn);
    }

    const char* name() const override { return "CallRetChecker"; }

  private:
    void
    onCall(const log::EventRecord& record, lifeguard::CostSink& cost)
    {
        // Push the architectural return address (pc + 8).
        cost.instrs(3);
        stacks_[record.tid].push_back(record.pc + 8);
    }

    void
    onReturn(const log::EventRecord& record, lifeguard::CostSink& cost)
    {
        cost.instrs(4);
        auto& stack = stacks_[record.tid];
        if (stack.empty()) {
            report({lifeguard::FindingKind::kCallRetMismatch, record.pc,
                    record.addr, record.tid,
                    "return without matching call"});
            return;
        }
        Addr expected = stack.back();
        stack.pop_back();
        if (record.addr != expected) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "return to 0x%llx, expected 0x%llx",
                          static_cast<unsigned long long>(record.addr),
                          static_cast<unsigned long long>(expected));
            report({lifeguard::FindingKind::kCallRetMismatch, record.pc,
                    record.addr, record.tid, msg});
        }
    }

    std::map<ThreadId, std::vector<Addr>> stacks_;
};

} // namespace

int
main()
{
    // A victim whose "callback" clobbers the link register before
    // returning — the return goes to the wrong place.
    const char* source = R"(
        li r9, 0
        call good           ; well-paired call
        call evil           ; returns to a hijacked address
        addi r9, r9, 100    ; skipped by the hijack
        halt
    good:
        addi r9, r9, 1
        ret
    evil:
        li lr, 0x10020      ; clobber the return address (stack smash):
        ret                 ; "returns" straight to halt at 0x10020
    )";
    auto assembled = assembler::assemble(source);
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly error (line %d): %s\n",
                     assembled.error_line, assembled.error.c_str());
        return 1;
    }

    core::Experiment experiment(assembled.program);
    auto factory = [] { return std::make_unique<CallRetChecker>(); };
    auto result = experiment.runLba(factory);

    std::printf("=== Custom lifeguard: call/return integrity ===\n");
    std::printf("slowdown: %.2fx (cheap handlers -> near-free "
                "monitoring)\n",
                result.slowdown);
    std::printf("findings (%zu):\n", result.findings.size());
    for (const auto& finding : result.findings) {
        std::printf("  %s\n", lifeguard::toString(finding).c_str());
    }
    if (result.findings.size() != 1 ||
        result.findings[0].kind !=
            lifeguard::FindingKind::kCallRetMismatch) {
        std::fprintf(stderr, "expected exactly one call/ret mismatch\n");
        return 1;
    }

    // The same checker on the retained per-record dispatch path must
    // report the same findings in the same cycles (the cycle-identity
    // invariant the batched handler table is built on).
    core::LbaConfig per_record = experiment.config().lba;
    per_record.dispatch_tier = core::DispatchTier::kPerRecord;
    auto baseline = experiment.runLba(factory, per_record);
    if (baseline.cycles != result.cycles ||
        baseline.findings.size() != result.findings.size() ||
        baseline.findings[0].pc != result.findings[0].pc) {
        std::fprintf(stderr,
                     "batched and per-record dispatch disagree\n");
        return 1;
    }
    std::printf("per-record dispatch agrees: %llu cycles both ways\n",
                static_cast<unsigned long long>(result.cycles));
    return 0;
}
