/**
 * @file
 * Rewind and on-the-fly bug repair — the paper's Section 1 vision: "the
 * log ... provid[es] a means, when a problem is detected, to
 * (selectively) rewind the monitored program and possibly perform
 * on-the-fly bug repair".
 *
 * The scenario: a service loop occasionally executes a use-after-free
 * read. AddrCheck (on the LBA lifeguard core) detects it; because
 * syscall containment bounds the detection lag, the process can be
 * rewound to the last syscall boundary — before the bad access took
 * effect — the offending instruction is patched out, and execution
 * resumes to a clean finish. The run is wired manually (Process +
 * LbaSystem + Checkpointer) to show the lower-level public API.
 */

#include <cstdio>
#include <memory>

#include "asm/assembler.h"
#include "core/lba_system.h"
#include "lifeguards/addrcheck.h"
#include "replay/checkpoint.h"

namespace {

using namespace lba;

/** Forwards to the LBA platform and stops the process on a finding. */
class StopOnFinding : public sim::RetireObserver
{
  public:
    StopOnFinding(sim::Process& process, core::LbaSystem& system,
                  lifeguard::Lifeguard& guard)
        : process_(process), system_(system), guard_(guard)
    {
    }

    void
    onRetire(const sim::Retired& retired) override
    {
        system_.onRetire(retired);
        // Batched dispatch defers handler execution to the next flush
        // boundary; sync before polling findings so detection latency
        // matches the per-record path (replay/containment.h does the
        // same before its finding checks).
        system_.timer().sync();
        if (guard_.findings().size() > seen_) {
            seen_ = guard_.findings().size();
            process_.requestStop();
        }
    }

    void onOsEvent(const sim::OsEvent& event) override
    {
        system_.onOsEvent(event);
    }

  private:
    sim::Process& process_;
    core::LbaSystem& system_;
    lifeguard::Lifeguard& guard_;
    std::size_t seen_ = 0;
};

} // namespace

int
main()
{
    const char* source = R"(
        ; a "service" that processes requests in a loop; one path reads
        ; a stale pointer after the buffer was released
        li r10, 5           ; requests to serve
    serve:
        li r1, 64
        syscall 1           ; buf = alloc(64)
        mov r9, r1
        sd r10, 0(r9)       ; use the buffer
        mov r1, r9
        syscall 2           ; free(buf)
        ld r2, 0(r9)        ; BUG: stale read after free
        addi r10, r10, -1
        bne r10, r0, serve
        halt
    )";
    auto assembled = lba::assembler::assemble(source);
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly error: %s\n",
                     assembled.error.c_str());
        return 1;
    }

    lba::sim::Process process;
    process.load(assembled.program);
    lba::mem::CacheHierarchy hierarchy(lba::mem::HierarchyConfig{});
    lba::lifeguards::AddrCheck guard;
    lba::core::LbaSystem system(guard, hierarchy, {});
    StopOnFinding stopper(process, system, guard);
    lba::replay::Checkpointer checkpointer(process, &stopper);
    process.setStoreInterceptor(&checkpointer);

    std::printf("=== rewind + on-the-fly repair ===\n");
    auto result = process.run(&checkpointer);
    if (!result.stopped || guard.findings().empty()) {
        std::printf("expected a finding to stop the run\n");
        return 1;
    }
    const auto& finding = guard.findings().front();
    std::printf("detected : %s\n",
                lba::lifeguard::toString(finding).c_str());
    std::printf("lag      : %llu instructions since the last syscall "
                "checkpoint\n",
                static_cast<unsigned long long>(
                    checkpointer.instructionsSinceCheckpoint()));

    // Rewind to the pre-bug state and patch the stale read into a nop.
    checkpointer.rewind();
    bool patched = process.patchInstruction(
        finding.pc, {lba::isa::Opcode::kNop, 0, 0, 0, 0});
    std::printf("repair   : %s instruction at pc=0x%llx\n",
                patched ? "patched" : "FAILED to patch",
                static_cast<unsigned long long>(finding.pc));

    // Resume: the remaining requests are served without incident.
    result = process.run(&checkpointer);
    system.finish();
    std::printf("resumed  : all_exited=%d, total findings=%zu "
                "(the one detection)\n",
                result.all_exited, guard.findings().size());
    std::printf("rewinds  : %llu, undo entries logged: %llu\n",
                static_cast<unsigned long long>(
                    checkpointer.stats().rewinds),
                static_cast<unsigned long long>(
                    checkpointer.stats().undo_entries));

    bool ok = patched && result.all_exited &&
              guard.findings().size() == 1;
    std::printf("\n%s\n", ok ? "repair SUCCEEDED" : "repair FAILED");
    return ok ? 0 : 1;
}
