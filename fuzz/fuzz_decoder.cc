/**
 * @file
 * Decoder fuzz harness: arbitrary attacker-controlled bytes into every
 * registered streaming decoder, with adversarial chunking.
 *
 * Input format: byte 0 selects the codec (mod registry size), byte 1
 * selects the push-chunk size (1..256), the rest is the encoded
 * stream. The decoder contract under test (compress/codec.h): next()
 * never aborts, never reads out of bounds, returns kNeedMore only
 * while input remains, and lands on exactly one of kEnd / kError once
 * the input is done — with a typed error set iff it failed.
 *
 * Built two ways (fuzz/CMakeLists.txt): against clang's libFuzzer
 * (+ASan, the CI fuzz-smoke job), or against the standalone driver in
 * standalone_main.cc when the toolchain has no libFuzzer (corpus
 * replay + deterministic mutations; the default gcc container).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/assert.h"
#include "compress/registry.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    using namespace lba::compress;
    if (size < 2) return 0;
    auto& registry = CodecRegistry::instance();
    auto names = registry.names();
    const CodecInfo* info =
        registry.find(names[data[0] % names.size()]);
    const std::size_t chunk = static_cast<std::size_t>(data[1]) + 1;
    data += 2;
    size -= 2;

    auto decoder = info->makeDecoder();
    lba::log::EventRecord record;
    std::size_t pos = 0;
    std::uint64_t decoded = 0;
    bool done = false;
    while (true) {
        DecodeStatus status = decoder->next(&record);
        if (status == DecodeStatus::kOk) {
            ++decoded;
            LBA_ASSERT(decoder->records() == decoded,
                       "decoder record count out of sync");
            continue;
        }
        if (status == DecodeStatus::kNeedMore) {
            LBA_ASSERT(!done,
                       "kNeedMore after finishInput must not happen");
            if (pos < size) {
                std::size_t n = std::min(chunk, size - pos);
                decoder->push(data + pos, n);
                pos += n;
            } else {
                decoder->finishInput();
                done = true;
            }
            continue;
        }
        if (status == DecodeStatus::kError) {
            LBA_ASSERT(!decoder->error().ok(),
                       "kError without a typed error");
            // Sticky: a second pull must report the same failure.
            LBA_ASSERT(decoder->next(&record) == DecodeStatus::kError,
                       "decode error must be sticky");
        }
        break; // kEnd or kError
    }
    return 0;
}
