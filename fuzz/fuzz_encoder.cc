/**
 * @file
 * Encoder fuzz harness: arbitrary bytes reinterpreted as event
 * records, pushed through every registered streaming encoder.
 *
 * Input format: byte 0 selects the codec (mod registry size), the
 * rest is consumed in fixed-width strides as packed EventRecord
 * fields (compress/record_gen.h). Codecs that declare
 * kCapCanonicalStreamsOnly get the canonicalized record — that is the
 * documented encoder precondition — while byte-aligned codecs must
 * take any field pattern. The contract under test: append() never
 * aborts, bitsWritten() is monotic per record, records() tracks the
 * append count, and after finishStream() the pullable bytes drain to
 * exactly ceil(bitsWritten/8).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "compress/record_gen.h"
#include "compress/registry.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    using namespace lba::compress;
    if (size < 1) return 0;
    auto& registry = CodecRegistry::instance();
    auto names = registry.names();
    const CodecInfo* info =
        registry.find(names[data[0] % names.size()]);
    const bool canonical_only =
        (info->caps & kCapCanonicalStreamsOnly) != 0;
    data += 1;
    size -= 1;

    auto encoder = info->makeEncoder();
    std::uint64_t appended = 0;
    std::uint64_t pulled = 0;
    std::uint8_t sink[64];
    for (std::size_t pos = 0; pos < size; pos += kRecordStrideBytes) {
        lba::log::EventRecord record =
            recordFromBytes(data + pos, size - pos);
        if (canonical_only) record = canonicalize(record);
        std::uint64_t before = encoder->bitsWritten();
        encoder->append(record);
        ++appended;
        LBA_ASSERT(encoder->bitsWritten() > before,
                   "append must write at least one bit");
        LBA_ASSERT(encoder->records() == appended,
                   "encoder record count out of sync");
        // Interleave pulls: streaming consumers drain mid-encode.
        pulled += encoder->pull(sink, sizeof sink);
    }
    encoder->finishStream();
    while (std::size_t n = encoder->pull(sink, sizeof sink))
        pulled += n;
    LBA_ASSERT(encoder->pullableBytes() == 0,
               "drained encoder must report nothing pullable");
    LBA_ASSERT(pulled == (encoder->bitsWritten() + 7) / 8,
               "drained bytes must equal ceil(bitsWritten/8)");
    return 0;
}
