/**
 * @file
 * Seed-corpus generator. Writes the checked-in corpora under
 * fuzz/corpus/{decoder,encoder,roundtrip}/ — fully deterministic, so
 * rerunning it reproduces the committed files byte for byte:
 *
 *   make_corpus <repo>/fuzz/corpus
 *
 * Seeds are small and structure-bearing (libFuzzer guidance): for the
 * decoder, genuinely valid encoded streams per registered codec plus
 * truncated/corrupted/garbage variants so the fuzzer starts on both
 * sides of every validity check; for the encoder and roundtrip
 * harnesses, packed record bytes in the recordFromBytes() layout.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "compress/record_gen.h"
#include "compress/registry.h"

namespace {

using namespace lba::compress;

void
writeFile(const std::filesystem::path& path,
          const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
}

/** Encode @p count workload records under codec #@p index. */
std::vector<std::uint8_t>
encodedStream(std::size_t index, const CodecInfo* info,
              std::size_t count)
{
    RecordGen gen(0xc0dec + index);
    auto encoder = info->makeEncoder();
    for (std::size_t i = 0; i < count; ++i) encoder->append(gen.next());
    encoder->finishStream();
    std::vector<std::uint8_t> payload(encoder->pullableBytes());
    encoder->pull(payload.data(), payload.size());
    return payload;
}

/** Pack records in the recordFromBytes() byte layout. */
std::vector<std::uint8_t>
packedRecords(std::uint64_t seed, std::size_t count, bool arbitrary)
{
    RecordGen gen(seed);
    std::vector<std::uint8_t> bytes;
    auto put64 = [&](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    for (std::size_t i = 0; i < count; ++i) {
        auto r = arbitrary ? gen.nextArbitrary() : gen.next();
        put64(r.pc);
        bytes.push_back(static_cast<std::uint8_t>(r.tid));
        bytes.push_back(static_cast<std::uint8_t>(r.tid >> 8));
        bytes.push_back(static_cast<std::uint8_t>(r.type));
        bytes.push_back(r.opcode);
        bytes.push_back(r.rd);
        bytes.push_back(r.rs1);
        bytes.push_back(r.rs2);
        put64(r.addr);
        put64(r.aux);
    }
    return bytes;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <corpus output dir>\n",
                     argv[0]);
        return 2;
    }
    std::filesystem::path root(argv[1]);
    for (const char* sub : {"decoder", "encoder", "roundtrip"})
        std::filesystem::create_directories(root / sub);

    auto& registry = CodecRegistry::instance();
    auto names = registry.names();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const CodecInfo* info = registry.find(names[i]);
        auto selector = static_cast<std::uint8_t>(i);

        // Decoder seeds: [codec, chunk, stream].
        std::vector<std::uint8_t> payload = encodedStream(i, info, 60);
        std::vector<std::uint8_t> valid = {selector, 7};
        valid.insert(valid.end(), payload.begin(), payload.end());
        writeFile(root / "decoder" / ("valid_" + names[i]), valid);

        std::vector<std::uint8_t> trunc(
            valid.begin(),
            valid.begin() +
                static_cast<std::ptrdiff_t>(valid.size() / 2));
        writeFile(root / "decoder" / ("trunc_" + names[i]), trunc);

        std::vector<std::uint8_t> flipped = valid;
        flipped[flipped.size() / 3] ^= 0x55;
        writeFile(root / "decoder" / ("flip_" + names[i]), flipped);

        // Encoder seeds: [codec, packed records].
        std::vector<std::uint8_t> recs =
            packedRecords(0xfeed + i, 12, /*arbitrary=*/true);
        std::vector<std::uint8_t> enc = {selector};
        enc.insert(enc.end(), recs.begin(), recs.end());
        writeFile(root / "encoder" / ("records_" + names[i]), enc);

        // Roundtrip seeds: [codec, chunk, packed records].
        std::vector<std::uint8_t> rt = {selector, 3};
        rt.insert(rt.end(), recs.begin(), recs.end());
        writeFile(root / "roundtrip" / ("records_" + names[i]), rt);
    }

    // Structure-free seeds: pure noise and minimal inputs.
    RecordGen noise(0xbadbee5);
    std::vector<std::uint8_t> garbage = {0, 0};
    for (int i = 0; i < 64; ++i)
        garbage.push_back(static_cast<std::uint8_t>(noise.nextU64()));
    writeFile(root / "decoder" / "garbage", garbage);
    writeFile(root / "decoder" / "tiny", {0x01, 0x00});
    writeFile(root / "encoder" / "tiny", {0x02});
    writeFile(root / "roundtrip" / "tiny", {0x00, 0x00, 0x41});

    std::printf("corpora written under %s\n", root.c_str());
    return 0;
}
