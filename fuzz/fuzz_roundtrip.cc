/**
 * @file
 * Roundtrip fuzz harness: encode fuzzer-shaped records, stream-decode
 * the bytes back in adversarial chunks, and assert byte-exact record
 * recovery — the invertibility property every registered codec owes
 * the transport (docs/ARCHITECTURE.md, "Compression").
 *
 * Input format: byte 0 selects the codec (mod registry size), byte 1
 * the decode chunk size (1..256), the rest packs EventRecords
 * (compress/record_gen.h). Records are canonicalized for codecs that
 * declare kCapCanonicalStreamsOnly; byte-aligned codecs must roundtrip
 * arbitrary field patterns. Any mismatch, early kEnd, or decode error
 * on a well-formed stream aborts the process for the fuzzer to report.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "compress/record_gen.h"
#include "compress/registry.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    using namespace lba::compress;
    if (size < 2) return 0;
    auto& registry = CodecRegistry::instance();
    auto names = registry.names();
    const CodecInfo* info =
        registry.find(names[data[0] % names.size()]);
    const bool canonical_only =
        (info->caps & kCapCanonicalStreamsOnly) != 0;
    const std::size_t chunk = static_cast<std::size_t>(data[1]) + 1;
    data += 2;
    size -= 2;

    std::vector<lba::log::EventRecord> records;
    for (std::size_t pos = 0; pos < size; pos += kRecordStrideBytes) {
        lba::log::EventRecord record =
            recordFromBytes(data + pos, size - pos);
        records.push_back(canonical_only ? canonicalize(record)
                                         : record);
    }

    auto encoder = info->makeEncoder();
    for (const auto& record : records) encoder->append(record);
    encoder->finishStream();
    std::vector<std::uint8_t> payload(encoder->pullableBytes());
    std::size_t got = encoder->pull(payload.data(), payload.size());
    LBA_ASSERT(got == payload.size(), "encoder under-drained");

    auto decoder = info->makeDecoder();
    lba::log::EventRecord record;
    std::size_t pos = 0;
    std::size_t decoded = 0;
    while (true) {
        DecodeStatus status = decoder->next(&record);
        if (status == DecodeStatus::kOk) {
            LBA_ASSERT(decoded < records.size(),
                       "decoder produced extra records");
            LBA_ASSERT(record == records[decoded],
                       "roundtrip record mismatch");
            ++decoded;
            continue;
        }
        if (status == DecodeStatus::kNeedMore) {
            if (pos < payload.size()) {
                std::size_t n =
                    std::min(chunk, payload.size() - pos);
                decoder->push(payload.data() + pos, n);
                pos += n;
            } else {
                decoder->finishInput();
            }
            continue;
        }
        LBA_ASSERT(status == DecodeStatus::kEnd,
                   "decode error on a well-formed stream");
        break;
    }
    LBA_ASSERT(decoded == records.size(),
               "decoder dropped trailing records");
    return 0;
}
