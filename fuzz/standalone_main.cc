/**
 * @file
 * Standalone fuzz driver: the no-libFuzzer fallback linked into each
 * harness when the toolchain cannot provide one (gcc has no
 * -fsanitize=fuzzer; this container ships gcc only). Understands
 * enough of the libFuzzer command line that the ctest replay entries
 * and docs/FUZZING.md invocations work unchanged under either driver:
 *
 *   fuzz_decoder [-runs=N] [-max_total_time=S] <corpus file|dir>...
 *
 * Every corpus input is replayed verbatim, then mutated N times
 * (default 256; -runs=0 replays only) with deterministic splitmix64
 * mutations seeded from the input bytes — a failure reproduces by
 * rerunning the same command, no crash file needed. Unknown -flags are
 * ignored for libFuzzer parity. This driver finds far less than
 * coverage-guided libFuzzer; the CI fuzz-smoke job runs the real one.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** One deterministic mutation step, in place. */
void
mutate(std::vector<std::uint8_t>& input, std::uint64_t& rng)
{
    std::uint64_t r = splitmix64(rng);
    if (input.empty()) {
        input.push_back(static_cast<std::uint8_t>(r));
        return;
    }
    switch (r % 5) {
        case 0: // flip one bit
            input[(r >> 8) % input.size()] ^=
                static_cast<std::uint8_t>(1u << ((r >> 3) % 8));
            break;
        case 1: // overwrite one byte
            input[(r >> 8) % input.size()] =
                static_cast<std::uint8_t>(r >> 16);
            break;
        case 2: // truncate
            input.resize((r >> 8) % input.size());
            break;
        case 3: // append a chunk of noise
            for (std::size_t i = 0, n = 1 + (r >> 8) % 16; i < n; ++i)
                input.push_back(
                    static_cast<std::uint8_t>(splitmix64(rng)));
            break;
        default: { // copy a chunk onto another position
            std::size_t src = (r >> 8) % input.size();
            std::size_t dst = (r >> 24) % input.size();
            std::size_t len = 1 + (r >> 40) % 8;
            for (std::size_t i = 0;
                 i < len && src + i < input.size() &&
                 dst + i < input.size();
                 ++i)
                input[dst + i] = input[src + i];
            break;
        }
    }
}

bool
readFile(const std::filesystem::path& path,
         std::vector<std::uint8_t>* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    long runs = 256;
    double max_total_time = 0; // seconds; 0 = unlimited
    std::vector<std::filesystem::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "-runs=", 6) == 0) {
            runs = std::atol(arg + 6);
        } else if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
            max_total_time = std::atof(arg + 16);
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "standalone driver: ignoring %s\n",
                         arg);
        } else {
            inputs.emplace_back(arg);
        }
    }

    // Expand directories into their (sorted) regular files.
    std::vector<std::filesystem::path> files;
    for (const auto& input : inputs) {
        std::error_code ec;
        if (std::filesystem::is_directory(input, ec)) {
            for (const auto& entry :
                 std::filesystem::directory_iterator(input, ec))
                if (entry.is_regular_file())
                    files.push_back(entry.path());
        } else {
            files.push_back(input);
        }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [-runs=N] [-max_total_time=S] "
                     "<corpus file|dir>...\n",
                     argv[0]);
        return 2;
    }

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            max_total_time > 0 ? max_total_time
                                               : 1e9));
    std::size_t executions = 0;
    for (const auto& file : files) {
        std::vector<std::uint8_t> seed;
        if (!readFile(file, &seed)) {
            std::fprintf(stderr, "cannot read corpus file %s\n",
                         file.c_str());
            return 2;
        }
        // Replay the seed verbatim, then deterministic mutants of it.
        LLVMFuzzerTestOneInput(seed.data(), seed.size());
        ++executions;
        std::uint64_t rng = 0x243f6a8885a308d3ull ^ seed.size();
        for (const std::uint8_t byte : seed)
            rng = rng * 131 + byte;
        std::vector<std::uint8_t> mutant = seed;
        for (long i = 0; i < runs; ++i) {
            if (std::chrono::steady_clock::now() >= deadline) break;
            mutate(mutant, rng);
            LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
            ++executions;
            if (mutant.size() > 4096 || (i & 15) == 15)
                mutant = seed; // restart from the seed periodically
        }
    }
    std::printf("standalone driver: %zu inputs over %zu seed files, "
                "no findings\n",
                executions, files.size());
    return 0;
}
